"""Integration tests across the full pipeline.

These exercise the paths the paper's evaluation exercises: sparse
matrix -> supervariable blocking -> extraction -> batched factorization
-> preconditioned Krylov solve, across factorization backends, block
bounds and matrix families.
"""

import numpy as np
import pytest

from repro.blocking import extract_blocks, supervariable_blocking
from repro.core import gh_factor, gh_solve, lu_factor, lu_solve
from repro.core.batch import BatchedVectors
from repro.precond import (
    BlockJacobiPreconditioner,
    ScalarJacobiPreconditioner,
)
from repro.solvers import bicgstab, idrs
from repro.sparse import (
    banded_waveguide,
    circuit_like,
    convection_diffusion_2d,
    fem_block_2d,
    load_matrix,
)


class TestPipelinePieces:
    def test_extract_factor_solve_equals_dense(self):
        """extraction -> batched LU -> batched TRSV == per-block dense
        solves (the preconditioner application contract)."""
        A = fem_block_2d(6, 6, 4, seed=0)
        sizes = supervariable_blocking(A, 16)
        batch = extract_blocks(A, sizes)
        fac = lu_factor(batch)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(A.n_rows)
        starts = np.concatenate([[0], np.cumsum(sizes)])
        segs = [x[starts[b] : starts[b + 1]] for b in range(sizes.size)]
        rhs = BatchedVectors.from_vectors(segs, tile=batch.tile)
        sol = lu_solve(fac, rhs)
        for b in range(sizes.size):
            blk = A.extract_block(int(starts[b]), int(sizes[b]))
            ref = np.linalg.solve(blk, segs[b])
            np.testing.assert_allclose(sol.vector(b), ref, rtol=1e-9,
                                       atol=1e-11)

    def test_gh_pipeline_matches_lu_pipeline(self):
        A = fem_block_2d(5, 5, 3, seed=2)
        sizes = supervariable_blocking(A, 12)
        batch = extract_blocks(A, sizes)
        rng = np.random.default_rng(3)
        x = rng.standard_normal(A.n_rows)
        starts = np.concatenate([[0], np.cumsum(sizes)])
        segs = [x[starts[b] : starts[b + 1]] for b in range(sizes.size)]
        rhs = BatchedVectors.from_vectors(segs, tile=batch.tile)
        x_lu = lu_solve(lu_factor(batch), rhs)
        x_gh = gh_solve(gh_factor(batch), rhs)
        np.testing.assert_allclose(
            x_gh.data, x_lu.data, rtol=1e-8, atol=1e-10
        )


class TestFamilies:
    """One preconditioned solve per matrix family."""

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: fem_block_2d(12, 12, 4, seed=4, dominance=0.5),
            lambda: convection_diffusion_2d(25, 25, peclet=40.0),
            lambda: circuit_like(1200, seed=5, hub_degree=120),
            lambda: banded_waveguide(1500, bandwidth=5, seed=6),
        ],
        ids=["fem", "convdiff", "circuit", "waveguide"],
    )
    def test_block_jacobi_idr_on_family(self, builder):
        A = builder()
        b = np.ones(A.n_rows)
        M = BlockJacobiPreconditioner("lu", 32).setup(A)
        r = idrs(A, b, s=4, M=M, maxiter=10000)
        assert r.converged, f"IDR failed on {A!r}"
        true = np.linalg.norm(A.matvec(r.x) - b) / np.linalg.norm(b)
        assert true < 1e-4


class TestPaperScenario:
    """The exact Table I protocol on a couple of suite matrices."""

    @pytest.mark.parametrize("name", ["fem_b4_s0", "varblk_s0"])
    def test_block_bounds_trend(self, name):
        A = load_matrix(name)
        b = np.ones(A.n_rows)
        its = {}
        for bound in (8, 32):
            M = BlockJacobiPreconditioner("lu", bound).setup(A)
            r = idrs(A, b, s=4, M=M, maxiter=10000)
            assert r.converged
            its[bound] = r.iterations
        # the paper's qualitative claim: larger bounds help (allow noise)
        assert its[32] <= 1.3 * its[8]

    def test_scalar_vs_block(self):
        A = load_matrix("fem_b6_s0")
        b = np.ones(A.n_rows)
        r_s = idrs(A, b, s=4, M=ScalarJacobiPreconditioner().setup(A),
                   maxiter=10000)
        M = BlockJacobiPreconditioner("lu", 32).setup(A)
        r_b = idrs(A, b, s=4, M=M, maxiter=10000)
        assert r_b.converged
        if r_s.converged:
            assert r_b.iterations < r_s.iterations

    def test_lu_vs_gh_rounding_noise_only(self):
        """Figure 8's premise on one matrix: LU- and GH-based
        preconditioners give nearly identical convergence."""
        A = load_matrix("fem_b4_s1")
        b = np.ones(A.n_rows)
        its = {}
        for method in ("lu", "gh"):
            M = BlockJacobiPreconditioner(method, 24).setup(A)
            r = idrs(A, b, s=4, M=M, maxiter=10000)
            assert r.converged
            its[method] = r.iterations
        denom = max(1, min(its.values()))
        assert abs(its["lu"] - its["gh"]) / denom < 0.5

    def test_bicgstab_cross_check(self):
        """A second solver over the same preconditioner converges to
        the same solution."""
        A = load_matrix("convdiff_p20")
        b = np.ones(A.n_rows)
        M = BlockJacobiPreconditioner("lu", 16).setup(A)
        r1 = idrs(A, b, s=4, M=M, maxiter=10000)
        r2 = bicgstab(A, b, M=M, maxiter=10000)
        assert r1.converged and r2.converged
        err = np.linalg.norm(r1.x - r2.x) / np.linalg.norm(r1.x)
        assert err < 1e-4


class TestGracefulDegradation:
    """The ISSUE acceptance scenario: a suite matrix doctored so that
    one diagonal block is exactly singular must (a) abort with the
    historical error under ``on_singular="raise"`` and (b) complete a
    block-Jacobi IDR(4) solve under ``on_singular="identity"``."""

    @staticmethod
    def doctored_suite_matrix():
        from repro.sparse import CsrMatrix

        A = load_matrix("fem_b4_s0")
        dense = A.to_dense()
        # zero the rows of one size-4 diagonal block *inside the block*
        # only, keeping the off-block coupling: the block is singular
        # but the matrix itself stays solvable
        s = 8  # third block under a uniform bs=4 partition
        dense[s : s + 4, s : s + 4] = 0.0
        dense[s : s + 4, s + 4 : s + 8] += np.eye(4)
        sizes = np.full(A.n_rows // 4, 4)
        return CsrMatrix.from_dense(dense), sizes

    def test_raise_policy_aborts_setup(self):
        A, sizes = self.doctored_suite_matrix()
        with pytest.raises(ValueError, match="singular"):
            BlockJacobiPreconditioner(
                "lu", block_sizes=sizes, on_singular="raise"
            ).setup(A)

    def test_default_policy_is_raise(self):
        A, sizes = self.doctored_suite_matrix()
        with pytest.raises(ValueError, match="singular"):
            BlockJacobiPreconditioner("lu", block_sizes=sizes).setup(A)

    @pytest.mark.parametrize("policy", ["identity", "scalar", "shift"])
    def test_idr4_completes_under_degradation(self, policy):
        A, sizes = self.doctored_suite_matrix()
        M = BlockJacobiPreconditioner(
            "lu", block_sizes=sizes, on_singular=policy
        ).setup(A)
        assert M.report.n_singular == 1
        b = np.ones(A.n_rows)
        r = idrs(A, b, s=4, M=M, maxiter=10000)
        # the solve must complete without an exception and stay finite;
        # with only one degraded block it should actually converge
        assert np.isfinite(r.residual_norm)
        assert r.converged
        err = np.linalg.norm(A.to_dense() @ r.x - b)
        assert err < 1e-4

    def test_report_flows_through_solve(self):
        A, sizes = self.doctored_suite_matrix()
        M = BlockJacobiPreconditioner(
            "lu", block_sizes=sizes, on_singular="identity"
        ).setup(A)
        r = bicgstab(A, np.ones(A.n_rows), M=M, maxiter=10000)
        assert np.isfinite(r.residual_norm)
        assert M.report.summary()  # printable after the solve
