"""Shared Hypothesis strategies and deterministic batch builders.

One home for the generators that were previously duplicated across
``tests/core``, ``tests/sparse`` and ``tests/blocking`` (and are now
also used by ``tests/verify``).  Two flavours:

* Hypothesis *strategies* (``batch_shapes``, ``seeds``, ``bounds``,
  ``coo_matrices``, ``supervariable_runs``) drawn by ``@given``;
* deterministic *builders* (``make_batch``, ``make_rhs``,
  ``random_sparse_dense``) that expand a drawn ``(shape, seed)`` into
  concrete data.  Keeping the heavy construction outside the strategy
  keeps shrinking fast: Hypothesis shrinks two integers, not a matrix.
"""

import numpy as np
from hypothesis import strategies as st

from repro.core import BatchedMatrices, BatchedVectors
from repro.sparse import CooMatrix

__all__ = [
    "batch_shapes",
    "seeds",
    "bounds",
    "supervariable_runs",
    "make_batch",
    "make_rhs",
    "random_sparse_dense",
    "coo_matrices",
]

#: (nb, max block size) of a variable-size batch
batch_shapes = st.tuples(
    st.integers(min_value=1, max_value=12),  # nb
    st.integers(min_value=1, max_value=16),  # max size
)

#: RNG seeds: large enough to decorrelate, small enough to shrink
seeds = st.integers(0, 2**20)

#: block-size bounds as accepted by supervariable_blocking
bounds = st.integers(1, 32)

#: supervariable size sequences for agglomeration properties
supervariable_runs = st.lists(st.integers(1, 50), min_size=1, max_size=60)


def make_batch(
    nb: int, max_size: int, seed: int, dominant: bool
) -> BatchedMatrices:
    """Identity-padded batch of random blocks with sizes in 1..max_size.

    ``dominant=True`` adds ``m + 1`` to the diagonal (always solvable,
    well conditioned); ``dominant=False`` leaves iid U(-1, 1) entries
    (pivoting genuinely matters, singularity has probability zero).
    """
    rng = np.random.default_rng(seed)
    sizes = rng.integers(1, max_size + 1, size=nb)
    blocks = []
    for m in sizes:
        M = rng.uniform(-1.0, 1.0, (m, m))
        if dominant:
            M[np.arange(m), np.arange(m)] += m + 1.0
        blocks.append(M)
    return BatchedMatrices.identity_padded(blocks)


def make_rhs(batch: BatchedMatrices, seed: int) -> BatchedVectors:
    """Random right-hand sides for a batch, zero outside active rows."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(-1, 1, (batch.nb, batch.tile))
    data[~batch.row_mask()] = 0.0
    return BatchedVectors(data, batch.sizes.copy())


def random_sparse_dense(
    seed: int, lo: int = 10, hi: int = 60, density: float = 0.4
) -> np.ndarray:
    """Dense array with a random sparsity pattern and a unit diagonal.

    The blocking tests convert this to CSR; the unit diagonal keeps
    every row structurally nonempty so supervariable detection always
    has something to chew on.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(lo, hi))
    D = rng.standard_normal((n, n))
    D[rng.random((n, n)) < 1.0 - density] = 0.0
    np.fill_diagonal(D, 1.0)
    return D


@st.composite
def coo_matrices(draw):
    """Random square COO matrices, duplicates and all-zero rows included."""
    n = draw(st.integers(1, 25))
    nnz = draw(st.integers(0, 80))
    seed = draw(seeds)
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    return CooMatrix(n, n, rows, cols, vals)
