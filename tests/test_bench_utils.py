"""Tests for the benchmark-harness utilities (repro.bench)."""

import numpy as np

from repro.bench import (
    BATCH_SWEEP,
    SIZE_SWEEP,
    format_series_table,
    format_table,
    getrf_flops,
    sweep,
    trsv_flops,
)


class TestFlops:
    def test_getrf_scalar(self):
        assert getrf_flops(32) == 2 * 32**3 / 3
        assert getrf_flops(16, nb=10) == 10 * 2 * 16**3 / 3

    def test_getrf_array_of_sizes(self):
        sizes = np.array([4, 8])
        assert getrf_flops(sizes) == 2 * (4**3 + 8**3) / 3

    def test_trsv(self):
        assert trsv_flops(16) == 2 * 16**2
        assert trsv_flops(np.array([2, 3])) == 2 * (4 + 9)


class TestSweeps:
    def test_batch_sweep_monotone_to_40000(self):
        assert BATCH_SWEEP[-1] == 40000
        assert list(BATCH_SWEEP) == sorted(BATCH_SWEEP)

    def test_size_sweep_paper_range(self):
        assert SIZE_SWEEP[0] == 4 and SIZE_SWEEP[-1] == 32

    def test_sweep_helper(self):
        assert sweep(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_series_table(self):
        out = format_series_table("x", [1, 2], {"s1": [10, 20], "s2": [3, 4]})
        assert "s1" in out and "s2" in out
        assert out.splitlines()[-1].split()[0] == "2"

    def test_float_formatting(self):
        out = format_table(["v"], [[1234.5], [0.00012], [5.5], [0.0]])
        assert "1234" in out or "1235" in out
        assert "0.00012" in out
        assert "5.5" in out
