"""JSON-safety: ``to_native`` unit behavior plus round-trip guarantees
for every report serializer in the package (``json.dumps`` must never
raise on a ``to_dict()`` result, whatever NumPy left inside)."""

import json
import math

import numpy as np
import pytest

from repro.telemetry import to_native


class TestToNative:
    def test_numpy_scalars(self):
        assert to_native(np.int64(3)) == 3
        assert isinstance(to_native(np.int64(3)), int)
        assert to_native(np.float64(0.5)) == 0.5
        assert isinstance(to_native(np.float64(0.5)), float)
        assert to_native(np.bool_(True)) is True

    def test_nonfinite_floats_become_none(self):
        assert to_native(float("nan")) is None
        assert to_native(float("inf")) is None
        assert to_native(np.float64("nan")) is None
        assert to_native(-math.inf) is None

    def test_arrays_and_containers(self):
        assert to_native(np.arange(3)) == [0, 1, 2]
        out = to_native({"a": (np.int32(1), {np.float64(2.0)})})
        assert out == {"a": [1, [2.0]]}
        json.dumps(out)

    def test_nested_nonfinite_inside_array(self):
        assert to_native(np.array([1.0, np.nan])) == [1.0, None]

    def test_object_with_to_dict(self):
        class Obj:
            def to_dict(self):
                return {"x": np.int64(7)}

        assert to_native(Obj()) == {"x": 7}

    def test_fallback_is_str(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert isinstance(to_native(Opaque()), str)

    def test_dict_keys_coerced_to_str(self):
        assert to_native({np.int64(1): "a"}) == {"1": "a"}


def _roundtrip(payload) -> dict:
    return json.loads(json.dumps(payload))


class TestReportRoundTrips:
    def test_runtime_report(self):
        from repro.core import random_batch, random_rhs
        from repro.runtime import BatchRuntime

        batch = random_batch(
            24, size_range=(1, 8), kind="diag_dominant", seed=0
        )
        rt = BatchRuntime(backend="binned", cache=False)
        fac = rt.factorize(batch, use_cache=False)
        fac.solve(random_rhs(batch, seed=1))
        d = _roundtrip(fac.report.to_dict())
        assert d["backend"] == "binned"
        assert d["nb"] == 24
        assert all(isinstance(b["tile"], int) for b in d["bins"])

    def test_setup_report(self):
        from repro.precond import BlockJacobiPreconditioner
        from repro.sparse import fem_block_2d

        A = fem_block_2d(5, 5, 2, seed=0)
        M = BlockJacobiPreconditioner(
            max_block_size=8, backend="binned"
        ).setup(A)
        d = _roundtrip(M.report.to_dict())
        assert d["n_blocks"] == len(d["block_sizes"])
        assert d["runtime"] is None or isinstance(d["runtime"], dict)
        assert isinstance(d["max_condition"], (float, type(None)))

    def test_watchdog_report(self):
        from repro.precond import BlockJacobiPreconditioner
        from repro.solvers import Watchdog, idrs
        from repro.sparse import fem_block_2d

        A = fem_block_2d(5, 5, 2, seed=0)
        b = np.ones(A.n_rows)
        M = BlockJacobiPreconditioner(max_block_size=8).setup(A)
        r = idrs(A, b, M=M, watchdog=Watchdog(audit_every=5))
        assert r.watchdog is not None
        d = _roundtrip(r.watchdog)
        assert d["audits"] >= 1

    def test_verification_report(self):
        from repro.verify import run_verification

        report = run_verification(quick=True, seed=0)
        d = _roundtrip(report.to_dict())
        assert isinstance(d["passed"], bool)

    def test_bench_sweep_report(self):
        from repro.bench.runtime_sweep import run_backend_sweep

        report = run_backend_sweep(
            backends=["numpy", "binned"], quick=True, seed=0
        )
        d = _roundtrip(report)
        assert d["schema"]["name"] == "repro.bench.runtime_sweep"
        assert isinstance(d["schema"]["version"], int)
        assert "git_sha" in d["meta"]
        assert isinstance(d["metrics"], dict)
        # deliberately timestamp-free metadata
        assert not any(
            "time" in k or "date" in k for k in d["meta"]
        )

    def test_chaos_report(self):
        from repro.chaos import run_chaos_suite

        report = run_chaos_suite(seed=0, quick=True)
        d = _roundtrip(report.to_dict())
        assert isinstance(d, dict)

    def test_nan_condition_estimate_survives_dumps(self):
        # a singular block under on_singular="identity" produces a NaN
        # condition estimate; the serializer must null it, not crash
        from repro.precond import BlockJacobiPreconditioner
        from repro.sparse.csr import CsrMatrix

        dense = np.array(
            [[0.0, 0.0, 0.0], [0.0, 2.0, 1.0], [0.0, 1.0, 2.0]]
        )
        A = CsrMatrix.from_dense(dense)
        M = BlockJacobiPreconditioner(
            max_block_size=3, on_singular="identity"
        ).setup(A)
        d = _roundtrip(M.report.to_dict())
        assert d["n_singular"] >= 0


class TestMetricsSnapshotRoundTrip:
    def test_snapshot_after_instrumented_run(self):
        from repro.core import random_batch
        from repro.runtime import BatchRuntime
        from repro.telemetry import metrics_snapshot

        batch = random_batch(
            16, size_range=(1, 8), kind="diag_dominant", seed=2
        )
        BatchRuntime(backend="binned", cache=False).factorize(
            batch, use_cache=False
        )
        d = _roundtrip(metrics_snapshot())
        assert "repro_stage_seconds" in d
