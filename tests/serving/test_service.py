"""Tests for the asyncio service: concurrent submission, flush
triggers, and shutdown semantics."""

import asyncio

import numpy as np

from repro.serving import (
    CoalescingEngine,
    PreconditionerService,
    Request,
    TenantCacheShards,
)
from tests.strategies import make_batch, make_rhs


def solve_request(tenant, nb=3, seed=0):
    batch = make_batch(nb, 12, seed=seed, dominant=True)
    return Request(
        tenant=tenant,
        batch=batch,
        kind="solve",
        rhs=make_rhs(batch, seed=seed + 1000),
    )


class TestConcurrentSubmission:
    def test_gathered_submits_coalesce(self):
        async def main():
            eng = CoalescingEngine()
            async with PreconditionerService(eng, max_delay=0.002) as svc:
                reqs = [solve_request(f"t{i}", seed=i) for i in range(6)]
                return eng, reqs, await asyncio.gather(
                    *(svc.submit(r) for r in reqs)
                )

        eng, reqs, responses = asyncio.run(main())
        assert all(r.status == "ok" for r in responses)
        assert {r.coalesced_requests for r in responses} == {6}
        assert eng.stats["executions"] == 1
        from repro.runtime import BatchRuntime

        for req, resp in zip(reqs, responses):
            solo = BatchRuntime(cache=False).factorize(
                req.batch, use_cache=False
            )
            np.testing.assert_array_equal(
                solo.solve(req.rhs).data, resp.solution.data
            )

    def test_block_threshold_triggers_flush_before_timer(self):
        async def main():
            eng = CoalescingEngine()
            # a huge linger window: only the block threshold can flush
            svc = PreconditionerService(
                eng, max_delay=60.0, flush_blocks=6
            )
            reqs = [solve_request(f"t{i}", nb=3, seed=i) for i in range(2)]
            out = await asyncio.wait_for(
                asyncio.gather(*(svc.submit(r) for r in reqs)),
                timeout=10.0,
            )
            await svc.stop()
            return out

        responses = asyncio.run(main())
        assert all(r.status == "ok" for r in responses)

    def test_rejections_resolve_without_flush(self):
        async def main():
            async with PreconditionerService(max_delay=60.0) as svc:
                batch = make_batch(2, 8, seed=0, dominant=True)
                return await svc.submit(
                    Request(tenant="t", batch=batch, kind="solve")
                )

        resp = asyncio.run(main())
        assert resp.status == "rejected"
        assert resp.rejection.reason == "invalid_request"

    def test_cache_hits_resolve_immediately(self):
        async def main():
            eng = CoalescingEngine(shards=TenantCacheShards())
            async with PreconditionerService(eng, max_delay=0.002) as svc:
                req = solve_request("t", seed=1)
                first = await svc.submit(req)
                again = await svc.submit(req)
                return first, again

        first, again = asyncio.run(main())
        assert first.status == "ok" and not first.cache_hit
        assert again.cache_hit
        np.testing.assert_array_equal(
            first.solution.data, again.solution.data
        )


class TestApply:
    def test_apply_roundtrip(self):
        async def main():
            async with PreconditionerService(max_delay=0.002) as svc:
                req = solve_request("t", seed=1)
                resp = await svc.submit(req)
                out = await svc.apply("t", resp.handle, req.rhs)
                return resp, out

        resp, out = asyncio.run(main())
        assert out.status == "ok"
        np.testing.assert_array_equal(
            out.solution.data, resp.solution.data
        )


class TestShutdown:
    def test_stop_sheds_pending_as_not_running(self):
        async def main():
            eng = CoalescingEngine()
            svc = PreconditionerService(eng, max_delay=60.0)
            task = asyncio.ensure_future(
                svc.submit(solve_request("t", seed=1))
            )
            await asyncio.sleep(0)  # let the submit enqueue
            shed = await svc.stop()
            return shed, await task

        shed, resp = asyncio.run(main())
        assert shed == 1
        assert resp.status == "rejected"
        assert resp.rejection.reason == "not_running"

    def test_submit_after_stop_rejected(self):
        async def main():
            svc = PreconditionerService(max_delay=0.002)
            await svc.stop()
            return await svc.submit(solve_request("t", seed=1))

        resp = asyncio.run(main())
        assert resp.rejection.reason == "not_running"

    def test_stop_is_idempotent(self):
        async def main():
            svc = PreconditionerService()
            assert await svc.stop() == 0
            return await svc.stop()

        assert asyncio.run(main()) == 0
