"""Trace-context propagation through the serving stack.

The headline regression: the tracer's span stack lives in a
``contextvars`` context, which ``asyncio.to_thread`` copies into its
worker thread - so the engine's ``serving.flush`` span parents under
the service-level ``serving.service.flush`` span even though the two
run on different threads.  (The old thread-local stack silently
dropped that edge.)  The rest pins the serving span topology: detached
per-request envelopes, fan-in links on the coalesced launch, fan-out
links on delivery.
"""

import asyncio

import pytest

from repro.serving import (
    CoalescingEngine,
    PreconditionerService,
    Request,
    ScriptedClock,
)
from repro.telemetry import Tracer, set_tracer, tracing
from tests.strategies import make_batch, make_rhs


def solve_request(tenant, nb=3, seed=0, **kw):
    batch = make_batch(nb, 12, seed=seed, dominant=True)
    return Request(
        tenant=tenant,
        batch=batch,
        kind="solve",
        rhs=make_rhs(batch, seed=seed + 1000),
        **kw,
    )


@pytest.fixture(autouse=True)
def _restore_tracer():
    yield
    set_tracer(None)


def _by_name(tr):
    out = {}
    for s in tr.spans() + tr.open_spans():
        out.setdefault(s.name, []).append(s)
    return out


class TestCrossThreadParentage:
    def test_worker_thread_flush_parents_under_service_span(self):
        """The satellite-1 regression: a flush running in
        ``asyncio.to_thread`` must keep the service span as parent."""

        async def main(tr):
            eng = CoalescingEngine()
            svc = PreconditionerService(eng, max_delay=60.0)
            fut = asyncio.ensure_future(
                svc.submit(solve_request("t", seed=1))
            )
            await asyncio.sleep(0)  # let the submit queue the job
            await svc.flush()
            return await fut

        with tracing() as tr:
            resp = asyncio.run(main(tr))
        assert resp.status == "ok"
        spans = _by_name(tr)
        (service_flush,) = spans["serving.service.flush"]
        (engine_flush,) = spans["serving.flush"]
        # different threads, same causal chain
        assert engine_flush.tid != service_flush.tid
        assert engine_flush.parent_id == service_flush.span_id
        assert service_flush.attrs["resolved"] == 1

    def test_launch_nests_under_cross_thread_flush(self):
        async def main():
            eng = CoalescingEngine()
            async with PreconditionerService(
                eng, max_delay=0.001
            ) as svc:
                return await svc.submit(solve_request("t", seed=2))

        with tracing() as tr:
            resp = asyncio.run(main())
        assert resp.status == "ok"
        spans = _by_name(tr)
        (launch,) = spans["serving.launch"]
        (engine_flush,) = spans["serving.flush"]
        assert launch.parent_id == engine_flush.span_id


class TestServingSpanTopology:
    def _run(self, n=3):
        clock = ScriptedClock()
        eng = CoalescingEngine(clock=clock)
        with tracing() as tr:
            tickets = [
                eng.submit(solve_request(f"t{i}", seed=i))
                for i in range(n)
            ]
            clock.advance(0.01)
            eng.flush()
        return tr, tickets

    def test_request_envelopes_are_detached_siblings(self):
        tr, tickets = self._run()
        spans = _by_name(tr)
        requests = spans["serving.request"]
        assert len(requests) == 3
        # sequential submits must not nest under one another
        ids = {s.span_id for s in requests}
        assert all(s.parent_id not in ids for s in requests)
        # every envelope is sealed with an outcome
        assert all(
            s.end is not None and s.attrs["outcome"] == "delivered"
            for s in requests
        )

    def test_queue_span_is_child_of_its_request(self):
        tr, _ = self._run()
        spans = _by_name(tr)
        by_id = {
            s.span_id: s
            for s in tr.spans() + tr.open_spans()
        }
        for q in spans["serving.queue"]:
            parent = by_id[q.parent_id]
            assert parent.name == "serving.request"
            assert parent.attrs["trace_id"] == q.attrs["trace_id"]

    def test_launch_links_every_merged_request(self):
        tr, tickets = self._run()
        spans = _by_name(tr)
        (launch,) = spans["serving.launch"]
        req_ids = {s.span_id for s in spans["serving.request"]}
        assert set(launch.links) == req_ids
        # the launch span itself is tenant-anonymous
        assert "trace_id" not in launch.attrs
        assert launch.attrs["requests"] == 3

    def test_deliver_fans_out_with_launch_link(self):
        tr, tickets = self._run()
        spans = _by_name(tr)
        (launch,) = spans["serving.launch"]
        by_id = {s.span_id: s for s in tr.spans() + tr.open_spans()}
        delivers = spans["serving.deliver"]
        assert len(delivers) == 3
        for d in delivers:
            assert d.links == [launch.span_id]
            assert by_id[d.parent_id].name == "serving.request"

    def test_scatter_and_coalesce_nest_in_launch(self):
        tr, _ = self._run()
        spans = _by_name(tr)
        (launch,) = spans["serving.launch"]
        (coalesce,) = spans["serving.coalesce"]
        (scatter,) = spans["serving.scatter"]
        assert coalesce.parent_id == launch.span_id
        assert scatter.parent_id == launch.span_id

    def test_trace_id_survives_queue_reordering(self):
        clock = ScriptedClock()
        eng = CoalescingEngine(clock=clock, scheduling="edf")
        with tracing() as tr:
            loose = eng.submit(
                solve_request("loose", seed=1, deadline=clock() + 60.0)
            )
            tight = eng.submit(
                solve_request("tight", seed=2, deadline=clock() + 50.0)
            )
            clock.advance(0.01)
            eng.flush()
        assert loose.response.status == "ok"
        assert tight.response.status == "ok"
        spans = _by_name(tr)
        for s in spans["serving.deliver"]:
            tenant = s.attrs["tenant"]
            ticket = {"loose": loose, "tight": tight}[tenant]
            assert s.attrs["trace_id"] == ticket.trace_id
            assert ticket.response.trace_id == ticket.trace_id

    def test_shed_request_envelope_seals_with_reason(self):
        clock = ScriptedClock()
        eng = CoalescingEngine(clock=clock)
        with tracing() as tr:
            t = eng.submit(
                solve_request("late", seed=3, deadline=clock() + 0.001)
            )
            clock.advance(10.0)  # deadline long gone
            eng.flush()
        assert t.response.status == "rejected"
        spans = _by_name(tr)
        (request,) = spans["serving.request"]
        assert request.attrs["outcome"] == "shed"
        assert request.attrs["reason"] == "deadline_exceeded"
        assert request.end is not None
        # queue span sealed too: no dangling open spans
        assert tr.open_spans() == []

    def test_disabled_tracer_costs_no_spans(self):
        clock = ScriptedClock()
        eng = CoalescingEngine(clock=clock)
        t = eng.submit(solve_request("t", seed=4))
        eng.flush()
        assert t.response.status == "ok"
        assert t.span is None and t.queue_span is None
