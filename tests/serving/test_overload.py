"""Deadline-aware overload control: EDF scheduling, quotas, CoDel
shedding, brownout degradation - all under scripted clocks."""

import numpy as np
import pytest

from repro.serving import (
    BROWNOUT_LEVELS,
    BrownoutController,
    CoalescingEngine,
    CoDelShedder,
    OverloadController,
    Request,
    ScriptedClock,
    TenantQuotas,
    TokenBucket,
)
from tests.strategies import make_batch, make_rhs


def solve_request(tenant="t0", nb=2, max_size=8, seed=0, **kw):
    batch = make_batch(nb, max_size, seed=seed, dominant=True)
    return Request(
        tenant=tenant,
        batch=batch,
        kind="solve",
        rhs=make_rhs(batch, seed=seed + 1000),
        **kw,
    )


class TickingClock:
    """Advances by ``step`` on every read - the stub that lets a
    single flush observe time passing between its entry and the
    scatter-back audit."""

    def __init__(self, start=0.0, step=0.02):
        self.now = start
        self.step = step

    def __call__(self):
        t = self.now
        self.now += self.step
        return t


class TestTokenBucket:
    def test_grants_until_burst_then_hints_refill(self):
        b = TokenBucket(rate=10.0, burst=5.0)
        assert b.try_take(5, now=0.0) == 0.0
        hint = b.try_take(5, now=0.0)
        assert hint == pytest.approx(0.5)
        # the failed take must not have drained anything
        assert b.tokens == 0.0
        # after the hinted wait the same take succeeds
        assert b.try_take(5, now=0.5) == 0.0

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=100.0, burst=4.0)
        assert b.try_take(4, now=0.0) == 0.0
        assert b.try_take(4, now=1000.0) == 0.0  # not 100k tokens

    def test_validates(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)


class TestTenantQuotas:
    def test_fair_share_and_weights(self):
        q = TenantQuotas(10.0, burst_seconds=1.0, weights={"vip": 3.0})
        assert q.admit("plain", 10, now=0.0) == 0.0
        assert q.admit("plain", 10, now=0.0) > 0.0
        # the vip's 3x weight buys a 3x bucket
        assert q.admit("vip", 30, now=0.0) == 0.0
        assert q.denied == {"plain": 1}

    def test_min_burst_keeps_jobs_admissible(self):
        # fair share 1 block/s with a 0.1 s burst would cap the bucket
        # at 0.1 blocks - below any real job - without the floor
        q = TenantQuotas(1.0, burst_seconds=0.1, min_burst=2.0)
        assert q.admit("t", 2, now=0.0) == 0.0

    def test_isolation_between_tenants(self):
        q = TenantQuotas(5.0, burst_seconds=1.0)
        assert q.admit("storm", 5, now=0.0) == 0.0
        assert q.admit("storm", 5, now=0.0) > 0.0
        # the storm's exhaustion does not touch the neighbour
        assert q.admit("calm", 5, now=0.0) == 0.0


class TestCoDelShedder:
    def test_enters_dropping_after_sustained_sojourn(self):
        s = CoDelShedder(target=0.01, interval=0.1)
        s.on_sojourn(0.05, now=0.0)
        assert not s.dropping
        s.on_sojourn(0.05, now=0.05)
        assert not s.dropping  # standing for only half the interval
        s.on_sojourn(0.05, now=0.1)
        assert s.dropping

    def test_short_bursts_pass_untouched(self):
        s = CoDelShedder(target=0.01, interval=0.1)
        s.on_sojourn(0.05, now=0.0)
        s.on_sojourn(0.001, now=0.05)  # queue drained: reset
        s.on_sojourn(0.05, now=0.09)
        assert not s.dropping
        assert not s.should_shed(0.09)

    def test_drop_cadence_accelerates(self):
        s = CoDelShedder(target=0.01, interval=0.1)
        s.on_sojourn(0.05, 0.0)
        s.on_sojourn(0.05, 0.1)
        assert s.should_shed(0.1)  # first drop
        assert not s.should_shed(0.15)  # next at 0.1 + 0.1/sqrt(1)
        assert s.should_shed(0.2)
        # third drop due at 0.2 + 0.1/sqrt(2) ~ 0.2707
        assert not s.should_shed(0.27)
        assert s.should_shed(0.271)

    def test_recovers_when_sojourn_falls(self):
        s = CoDelShedder(target=0.01, interval=0.1)
        s.on_sojourn(0.05, 0.0)
        s.on_sojourn(0.05, 0.1)
        assert s.dropping
        s.on_sojourn(0.001, 0.2)
        assert not s.dropping
        assert not s.should_shed(0.2)


class TestBrownoutController:
    def test_full_ladder_up_and_down(self):
        b = BrownoutController(
            enter_pressure=0.8, exit_pressure=0.2,
            escalate_hold=1.0, recover_hold=1.0,
        )
        assert b.level == "normal"
        b.observe(1.0, now=0.0)
        assert b.level == "normal"  # hold not yet served
        for i, expected in enumerate(BROWNOUT_LEVELS[1:], start=1):
            b.observe(1.0, now=float(i))
            assert b.level == expected
        b.observe(1.0, now=10.0)
        assert b.level == "reroute"  # ladder saturates
        b.observe(0.0, now=20.0)
        for i, expected in enumerate(
            reversed(BROWNOUT_LEVELS[:-1]), start=1
        ):
            b.observe(0.0, now=20.0 + i)
            assert b.level == expected
        assert [t["to"] for t in b.transitions] == [
            "demote_apply", "shrink_linger", "reroute",
            "shrink_linger", "demote_apply", "normal",
        ]

    def test_hysteresis_band_holds_the_level(self):
        b = BrownoutController(
            enter_pressure=0.8, exit_pressure=0.2,
            escalate_hold=0.0, recover_hold=0.0,
        )
        b.observe(0.9, now=0.0)
        assert b.level == "demote_apply"
        for i in range(50):
            b.observe(0.5, now=1.0 + i)  # inside the band
        assert b.level == "demote_apply"
        assert len(b.transitions) == 1

    def test_validates_thresholds(self):
        with pytest.raises(ValueError):
            BrownoutController(enter_pressure=0.2, exit_pressure=0.8)


class TestEdfScheduling:
    def _capacity_engine(self, clock, scheduling="edf", nb=2):
        # capacity of exactly one nb-block job per flush
        return CoalescingEngine(
            clock=clock, scheduling=scheduling, max_flush_blocks=nb
        )

    def test_earliest_deadline_runs_first(self):
        clock = ScriptedClock()
        eng = self._capacity_engine(clock)
        late = eng.submit(solve_request(seed=1, deadline=9.0))
        soon = eng.submit(solve_request(seed=2, deadline=1.0))
        eng.flush()
        assert soon.done and soon.response.status == "ok"
        assert not late.done  # deferred behind the capacity bound
        assert eng.stats["deferred"] == 1
        eng.flush()
        assert late.done

    def test_deadline_less_jobs_run_last(self):
        clock = ScriptedClock()
        eng = self._capacity_engine(clock)
        open_ended = eng.submit(solve_request(seed=1))
        dated = eng.submit(solve_request(seed=2, deadline=5.0))
        eng.flush()
        assert dated.done and not open_ended.done

    def test_priority_breaks_deadline_ties(self):
        clock = ScriptedClock()
        eng = self._capacity_engine(clock)
        mild = eng.submit(solve_request(seed=1, deadline=1.0, priority=5))
        urgent = eng.submit(solve_request(seed=2, deadline=1.0, priority=0))
        eng.flush()
        assert urgent.done and not mild.done

    def test_fifo_baseline_ignores_deadlines(self):
        clock = ScriptedClock()
        eng = self._capacity_engine(clock, scheduling="fifo")
        first = eng.submit(solve_request(seed=1, deadline=9.0))
        second = eng.submit(solve_request(seed=2, deadline=1.0))
        eng.flush()
        assert first.done and not second.done

    def test_expired_at_admission(self):
        clock = ScriptedClock(start=10.0)
        eng = CoalescingEngine(clock=clock)
        t = eng.submit(solve_request(deadline=5.0))
        assert t.done
        assert t.response.rejection.reason == "deadline_exceeded"
        assert t.response.rejection.detail["stage"] == "admission"

    def test_expired_in_queue_shed_at_flush(self):
        clock = ScriptedClock()
        eng = CoalescingEngine(clock=clock)
        t = eng.submit(solve_request(deadline=1.0))
        assert not t.done
        clock.advance(2.0)
        responses = eng.flush()
        assert t.done
        assert t.response.rejection.reason == "deadline_exceeded"
        assert t.response.rejection.detail["stage"] == "queue"
        assert [r.rejection.reason for r in responses] == [
            "deadline_exceeded"
        ]
        assert eng.stats["executions"] == 0  # never launched

    def test_delivery_audit_never_serves_late(self):
        # the ticking clock passes the flush-entry expiry check but
        # crosses the deadline by scatter-back time
        clock = TickingClock(step=0.02)
        eng = CoalescingEngine(clock=clock)
        t = eng.submit(solve_request(deadline=0.05))
        eng.flush()
        assert t.done
        assert t.response.status == "rejected"
        assert t.response.rejection.reason == "deadline_exceeded"
        assert t.response.rejection.detail["stage"] == "delivery"
        assert eng.stats["late_deliveries_prevented"] == 1
        # the work itself ran - only the late delivery was refused
        assert eng.stats["executions"] == 1

    def test_ok_responses_carry_delivery_stamp_within_deadline(self):
        clock = ScriptedClock()
        eng = CoalescingEngine(clock=clock)
        t = eng.submit(solve_request(deadline=1.0))
        eng.flush()
        assert t.response.status == "ok"
        assert t.response.delivered_at is not None
        assert t.response.delivered_at <= 1.0

    def test_fifo_delivers_late_without_audit(self):
        clock = TickingClock(step=0.02)
        eng = CoalescingEngine(clock=clock, scheduling="fifo")
        t = eng.submit(solve_request(deadline=0.05))
        eng.flush()
        assert t.response.status == "ok"  # the baseline's failure mode
        assert t.response.delivered_at > 0.05

    def test_rejects_unknown_scheduling(self):
        with pytest.raises(ValueError, match="scheduling"):
            CoalescingEngine(scheduling="lifo")


class TestQuotaAndCodelInEngine:
    def test_storm_tenant_shed_with_retry_hint(self):
        clock = ScriptedClock()
        eng = CoalescingEngine(
            clock=clock,
            overload=OverloadController(
                quotas=TenantQuotas(4.0, burst_seconds=1.0)
            ),
        )
        ok = eng.submit(solve_request(tenant="storm", nb=4, seed=1))
        assert not ok.done
        shed = eng.submit(solve_request(tenant="storm", nb=4, seed=2))
        assert shed.done
        rej = shed.response.rejection
        assert rej.reason == "tenant_quota_exceeded"
        assert rej.retry_after and rej.retry_after > 0.0
        # a different tenant is untouched by the storm's exhaustion
        calm = eng.submit(solve_request(tenant="calm", nb=4, seed=3))
        assert not calm.done
        assert eng.stats["rejected"] == {"tenant_quota_exceeded": 1}

    def test_codel_sheds_while_dropping(self):
        clock = ScriptedClock()
        shedder = CoDelShedder(target=0.01, interval=0.05)
        eng = CoalescingEngine(
            clock=clock, overload=OverloadController(shedder=shedder)
        )
        # stand a queue: the job sits 0.1 s before its flush, twice,
        # spanning more than one interval
        for _ in range(2):
            eng.submit(solve_request(seed=7))
            clock.advance(0.1)
            eng.flush()
        assert shedder.dropping
        t = eng.submit(solve_request(seed=8))
        assert t.done
        assert t.response.rejection.reason == "overloaded"
        assert t.response.rejection.retry_after > 0.0


class TestBrownoutInEngine:
    def _pressured_engine(self, clock):
        eng = CoalescingEngine(
            clock=clock,
            scheduling="edf",
            max_flush_blocks=2,
            overload=OverloadController(
                brownout=BrownoutController(
                    enter_pressure=0.5,
                    exit_pressure=0.1,
                    escalate_hold=0.0,
                    recover_hold=0.0,
                ),
                reroute_priority=1,
            ),
        )
        return eng

    def _pressurize(self, eng, clock, flushes, seed=0, **kw):
        for i in range(flushes):
            for j in range(4):
                eng.submit(
                    solve_request(seed=seed + 10 * i + j, **kw)
                )
            eng.flush()
            clock.advance(0.01)

    def test_sustained_deferral_escalates_and_demotes_inverse(self):
        clock = ScriptedClock()
        eng = self._pressured_engine(clock)
        self._pressurize(eng, clock, 3, apply_mode="inverse")
        assert eng.brownout_level != "normal"
        assert eng.stats["brownout_demotions"] > 0
        assert eng.overload.brownout.transitions

    def test_linger_scale_shrinks_under_pressure(self):
        clock = ScriptedClock()
        eng = self._pressured_engine(clock)
        assert eng.linger_scale == 1.0
        self._pressurize(eng, clock, 4)
        assert eng.brownout_level in ("shrink_linger", "reroute")
        assert eng.linger_scale == 0.25

    def _rerouting_engine(self, clock):
        # pin the controller at the top of the ladder: these tests are
        # about the lane mechanics, not the escalation path above
        return CoalescingEngine(
            clock=clock,
            scheduling="edf",
            overload=OverloadController(
                brownout=BrownoutController(
                    level_index=len(BROWNOUT_LEVELS) - 1
                ),
                reroute_priority=1,
            ),
        )

    def test_reroute_lane_takes_lowest_priority_traffic(self):
        clock = ScriptedClock()
        eng = self._rerouting_engine(clock)
        assert eng.brownout_level == "reroute"
        low = eng.submit(solve_request(seed=99, priority=3))
        high = eng.submit(solve_request(seed=98, priority=0))
        eng.flush()
        assert low.response.status == "ok"
        assert high.response.status == "ok"
        # only the priority-3 job crosses into the reference lane
        assert eng.stats["rerouted"] == 1

    def test_rerouted_answers_match_the_primary_lane(self):
        clock = ScriptedClock()
        eng = self._rerouting_engine(clock)
        req = solve_request(seed=123, priority=3)
        t = eng.submit(solve_request(seed=123, priority=3))
        eng.flush()
        assert eng.stats["rerouted"] == 1
        assert t.response.status == "ok"
        from repro.runtime import BatchRuntime

        solo = BatchRuntime(cache=False)
        ref = solo.factorize(req.batch, use_cache=False)
        assert np.array_equal(ref.info, t.response.info)
        assert np.allclose(
            ref.solve(req.rhs).data, t.response.solution.data
        )


class TestScriptedDeterminism:
    def _trace(self, seed):
        """One scripted overload session; returns every observable
        decision in order."""
        clock = ScriptedClock()
        eng = CoalescingEngine(
            clock=clock,
            scheduling="edf",
            max_flush_blocks=4,
            overload=OverloadController(
                quotas=TenantQuotas(
                    40.0, burst_seconds=0.2, min_burst=2
                ),
                shedder=CoDelShedder(target=0.02, interval=0.05),
                brownout=BrownoutController(
                    enter_pressure=0.5,
                    exit_pressure=0.1,
                    escalate_hold=0.01,
                    recover_hold=0.05,
                ),
            ),
        )
        rng = np.random.default_rng(seed)
        log = []
        tickets = []
        for step in range(40):
            for j in range(int(rng.integers(1, 4))):
                req = solve_request(
                    tenant=f"t{int(rng.integers(3))}",
                    seed=1000 * step + j,
                    deadline=clock() + float(rng.choice([0.05, 0.2])),
                    priority=int(rng.integers(2)),
                )
                t = eng.submit(req)
                tickets.append(t)
                if t.done:
                    log.append(("reject", t.response.rejection.reason))
            eng.flush()
            log.append(("level", eng.brownout_level))
            clock.advance(0.01)
        for t in tickets:
            if t.done:
                r = t.response
                log.append(
                    (
                        r.status,
                        r.rejection.reason if r.rejection else None,
                        round(r.queue_seconds, 9),
                    )
                )
        log.append(("stats", {
            k: v for k, v in eng.stats.items()
            if k != "applies"
        }))
        return log

    def test_same_scripted_trace_is_bit_identical(self):
        assert self._trace(7) == self._trace(7)

    def test_different_seeds_differ(self):
        # guards against the trace accidentally logging nothing
        assert self._trace(7) != self._trace(8)
