"""Metrics stay truthful under overload: the queue-depth gauge lands
on exactly 0 whenever the queue drains, and every shed path is
attributed to its structured reason."""

import pytest

from repro.serving import (
    BrownoutController,
    CoalescingEngine,
    CoDelShedder,
    OverloadController,
    Request,
    ScriptedClock,
    TenantQuotas,
)
from repro.telemetry.metrics import get_metrics, set_metrics
from tests.strategies import make_batch, make_rhs


@pytest.fixture(autouse=True)
def fresh_registry():
    old = set_metrics(None)
    yield
    set_metrics(old)


def depth():
    return get_metrics().gauge("repro_serving_queue_depth").value()


def sheds(reason):
    return get_metrics().counter("repro_serving_sheds_total").value(
        reason=reason
    )


def solve_request(tenant="t0", nb=2, seed=0, **kw):
    batch = make_batch(nb, 8, seed=seed, dominant=True)
    return Request(
        tenant=tenant,
        batch=batch,
        kind="solve",
        rhs=make_rhs(batch, seed=seed + 1),
        **kw,
    )


class TestQueueDepthGauge:
    def test_tracks_submits_and_zeroes_after_flush(self):
        eng = CoalescingEngine(clock=ScriptedClock())
        eng.submit(solve_request(seed=1))
        assert depth() == 1
        eng.submit(solve_request(seed=2))
        assert depth() == 2
        eng.flush()
        assert depth() == 0

    def test_zeroes_after_queue_expiry_shed(self):
        clock = ScriptedClock()
        eng = CoalescingEngine(clock=clock)
        eng.submit(solve_request(seed=1, deadline=1.0))
        clock.advance(2.0)
        eng.flush()  # everything pending is shed, nothing executes
        assert depth() == 0

    def test_zeroes_after_close(self):
        eng = CoalescingEngine(clock=ScriptedClock())
        eng.submit(solve_request(seed=1))
        eng.submit(solve_request(seed=2))
        assert eng.close() == 2
        assert depth() == 0

    def test_deferred_backlog_is_visible_not_hidden(self):
        eng = CoalescingEngine(
            clock=ScriptedClock(), scheduling="edf", max_flush_blocks=2
        )
        for seed in range(3):
            eng.submit(solve_request(seed=seed))
        eng.flush()  # capacity admits one 2-block job, defers two
        assert depth() == 2
        eng.flush()
        assert depth() == 1
        eng.flush()
        assert depth() == 0

    def test_empty_flush_reasserts_zero(self):
        eng = CoalescingEngine(clock=ScriptedClock())
        eng.flush()
        assert depth() == 0


class TestShedReasonAttribution:
    def test_deadline_exceeded_counted_once_per_shed(self):
        clock = ScriptedClock(10.0)
        eng = CoalescingEngine(clock=clock)
        eng.submit(solve_request(seed=1, deadline=5.0))  # admission
        eng.submit(solve_request(seed=2, deadline=20.0))
        clock.advance(15.0)
        eng.flush()  # queue expiry
        assert sheds("deadline_exceeded") == 2

    def test_tenant_quota_exceeded_attributed(self):
        eng = CoalescingEngine(
            clock=ScriptedClock(),
            overload=OverloadController(
                quotas=TenantQuotas(2.0, burst_seconds=1.0)
            ),
        )
        eng.submit(solve_request(tenant="storm", seed=1))
        eng.submit(solve_request(tenant="storm", seed=2))
        assert sheds("tenant_quota_exceeded") == 1

    def test_overloaded_attributed(self):
        shedder = CoDelShedder(target=0.01, interval=0.05)
        shedder.on_sojourn(0.1, 0.0)
        shedder.on_sojourn(0.1, 0.1)  # force the dropping state
        eng = CoalescingEngine(
            clock=ScriptedClock(1.0),
            overload=OverloadController(shedder=shedder),
        )
        eng.submit(solve_request(seed=1))
        assert sheds("overloaded") == 1

    def test_brownout_transitions_counter_and_level_gauge(self):
        b = BrownoutController(
            enter_pressure=0.5, exit_pressure=0.1,
            escalate_hold=0.0, recover_hold=0.0,
        )
        b.observe(1.0, now=0.0)
        assert (
            get_metrics()
            .counter("repro_serving_brownout_transitions_total")
            .value(direction="escalate", to="demote_apply")
            == 1
        )
        assert (
            get_metrics().gauge("repro_serving_brownout_level").value()
            == 1
        )
        b.observe(0.0, now=1.0)
        assert (
            get_metrics().gauge("repro_serving_brownout_level").value()
            == 0
        )
