"""Tests for cross-request merging and scatter-back correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BatchedVectors
from repro.runtime import BatchRuntime
from repro.serving import merge_batches, merge_rhs
from tests.strategies import make_batch, make_rhs


class TestMergeBatches:
    def test_geometry_and_segments(self):
        batches = [
            make_batch(3, 8, seed=0, dominant=True),
            make_batch(2, 16, seed=1, dominant=True),
            make_batch(4, 4, seed=2, dominant=True),
        ]
        merged, segments = merge_batches(batches)
        assert merged.nb == 9
        assert merged.tile == max(b.tile for b in batches)
        pos = 0
        for b, seg in zip(batches, segments):
            np.testing.assert_array_equal(
                seg, np.arange(pos, pos + b.nb)
            )
            np.testing.assert_array_equal(
                merged.sizes[seg], b.sizes
            )
            np.testing.assert_array_equal(
                merged.data[seg, : b.tile, : b.tile], b.data
            )
            pos += b.nb

    def test_identity_padding_beyond_request_tile(self):
        small = make_batch(2, 4, seed=3, dominant=True)
        big = make_batch(1, 32, seed=4, dominant=True)
        merged, segments = merge_batches([small, big])
        t = small.tile
        pad = merged.data[segments[0], t:, t:]
        idx = np.arange(merged.tile - t)
        assert (pad[:, idx, idx] == 1.0).all()
        off = pad.copy()
        off[:, idx, idx] = 0.0
        assert (off == 0.0).all()
        # off-diagonal bands between the request tile and the merged
        # tile are exactly zero
        assert (merged.data[segments[0], :t, t:] == 0.0).all()
        assert (merged.data[segments[0], t:, :t] == 0.0).all()

    def test_rejects_empty_and_mixed_dtype(self):
        with pytest.raises(ValueError, match="empty"):
            merge_batches([])
        a = make_batch(2, 8, seed=0, dominant=True)
        b = make_batch(2, 8, seed=1, dominant=True).astype(np.float32)
        with pytest.raises(ValueError, match="dtype"):
            merge_batches([a, b])

    def test_single_batch_roundtrip(self):
        a = make_batch(5, 12, seed=9, dominant=True)
        merged, segments = merge_batches([a])
        np.testing.assert_array_equal(merged.data, a.data)
        np.testing.assert_array_equal(segments[0], np.arange(5))


class TestMergeRhs:
    def test_zeros_elsewhere_assembly(self):
        batches = [
            make_batch(2, 8, seed=0, dominant=True),
            make_batch(3, 8, seed=1, dominant=True),
        ]
        merged, segments = merge_batches(batches)
        rhs1 = make_rhs(batches[1], seed=5)
        out = merge_rhs(merged, [(segments[1], rhs1)])
        np.testing.assert_array_equal(
            out.data[segments[1], : rhs1.tile], rhs1.data
        )
        assert (out.data[segments[0]] == 0.0).all()
        assert out.nb == merged.nb


class TestScatterBack:
    """The coalescing soundness contract: merging requests changes
    scheduling, never numerics - per-request results are bit-identical
    to solo runs."""

    @settings(max_examples=25, deadline=None)
    @given(
        shapes=st.lists(
            st.tuples(
                st.integers(1, 6),  # nb
                st.integers(1, 16),  # max size
                st.integers(0, 2**20),  # seed
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_coalesced_results_bit_identical_to_solo(self, shapes):
        batches = [
            make_batch(nb, ms, seed=s, dominant=True)
            for nb, ms, s in shapes
        ]
        rhss = [make_rhs(b, seed=i) for i, b in enumerate(batches)]
        merged, segments = merge_batches(batches)
        rt = BatchRuntime(cache=False)
        shared = rt.factorize(merged, use_cache=False)
        merged_rhs = merge_rhs(
            merged, list(zip(segments, rhss))
        )
        merged_out = shared.solve(merged_rhs)
        for b, r, seg in zip(batches, rhss, segments):
            solo = BatchRuntime(cache=False).factorize(
                b, use_cache=False
            )
            np.testing.assert_array_equal(
                solo.info, shared.info[seg]
            )
            np.testing.assert_array_equal(
                solo.solve(r).data,
                merged_out.data[seg, : b.tile],
            )


class TestTenantFactorization:
    def _view(self, seed=0):
        from repro.serving import TenantFactorization

        batches = [
            make_batch(3, 8, seed=seed, dominant=True),
            make_batch(2, 16, seed=seed + 1, dominant=True),
        ]
        merged, segments = merge_batches(batches)
        shared = BatchRuntime(cache=False).factorize(
            merged, use_cache=False
        )
        views = [
            TenantFactorization(
                tenant=f"t{i}",
                shared=shared,
                indices=seg,
                tile=b.tile,
                sizes=b.sizes.copy(),
            )
            for i, (b, seg) in enumerate(zip(batches, segments))
        ]
        return batches, shared, views

    def test_info_is_a_copy(self):
        _, shared, views = self._view()
        info = views[0].info
        info[:] = 99
        assert (shared.info == 0).all()
        assert (views[0].info == 99).all()  # the cached copy

    def test_solve_slices_own_blocks(self):
        batches, _, views = self._view()
        for b, v in zip(batches, views):
            rhs = make_rhs(b, seed=7)
            out = v.solve(rhs)
            solo = BatchRuntime(cache=False).factorize(
                b, use_cache=False
            )
            np.testing.assert_array_equal(
                out.data, solo.solve(rhs).data
            )
            assert out.nb == b.nb and out.tile == b.tile

    def test_solve_rejects_wrong_geometry(self):
        batches, _, views = self._view()
        wrong = BatchedVectors(
            np.zeros((batches[0].nb + 1, batches[0].tile)),
            np.ones(batches[0].nb + 1, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="geometry"):
            views[0].solve(wrong)

    def test_nbytes_shares_partition_shared_total(self):
        _, shared, views = self._view()
        shares = [v.nbytes for v in views]
        assert all(s > 0 for s in shares)
        assert sum(shares) <= shared.nbytes
        assert sum(shares) >= shared.nbytes - len(views)

    def test_ok_and_block_counts(self):
        batches, shared, views = self._view()
        assert all(v.ok for v in views)
        assert views[0].nb == batches[0].nb
        assert views[0].coalesced_blocks == shared.nb
