"""Every serving dataclass serializes to plain JSON - the wire/log
contract the service and bench reports rely on."""

import json

import pytest

from repro.serving import (
    CoalescingEngine,
    Rejection,
    Request,
    ScriptedClock,
)
from tests.strategies import make_batch, make_rhs


def roundtrip(d):
    """json round-trip; fails on numpy scalars/arrays left behind."""
    return json.loads(json.dumps(d))


def make_request(**kw):
    batch = make_batch(3, 8, seed=4, dominant=True)
    return Request(
        tenant="acme",
        batch=batch,
        kind="solve",
        rhs=make_rhs(batch, seed=5),
        **kw,
    )


class TestRejectionDict:
    def test_roundtrip(self):
        r = Rejection(
            "tenant_quota_exceeded", {"tenant": "acme"},
            retry_after=0.25, trace_id="abc123",
        )
        assert roundtrip(r.to_dict()) == {
            "reason": "tenant_quota_exceeded",
            "detail": {"tenant": "acme"},
            "retry_after": 0.25,
            "trace_id": "abc123",
        }

    def test_retry_after_defaults_to_null(self):
        d = roundtrip(Rejection("queue_full").to_dict())
        assert d["retry_after"] is None
        assert d["trace_id"] is None


class TestRequestDict:
    def test_roundtrip_carries_deadline_and_priority(self):
        d = roundtrip(
            make_request(deadline=1.5, priority=2).to_dict()
        )
        assert d["tenant"] == "acme"
        assert d["kind"] == "solve"
        assert d["nb"] == 3
        assert d["deadline"] == 1.5
        assert d["priority"] == 2

    def test_never_embeds_block_data(self):
        d = make_request().to_dict()
        assert "batch" not in d and "rhs" not in d

    def test_trace_id_minted_and_carried(self):
        d = roundtrip(make_request().to_dict())
        assert isinstance(d["trace_id"], str) and d["trace_id"]

    def test_explicit_trace_id_wins(self):
        d = make_request(trace_id="client-supplied").to_dict()
        assert d["trace_id"] == "client-supplied"

    def test_trace_ids_are_unique(self):
        a, b = make_request(), make_request()
        assert a.trace_id != b.trace_id


class TestResponseAndTicketDicts:
    @pytest.fixture()
    def engine(self):
        return CoalescingEngine(clock=ScriptedClock())

    def test_ok_response_roundtrip(self, engine):
        req = make_request(deadline=10.0)
        t = engine.submit(req)
        engine.flush()
        d = roundtrip(t.response.to_dict())
        assert d["status"] == "ok"
        assert d["rejection"] is None
        assert d["info"] == [0, 0, 0]  # plain list, not ndarray
        assert d["delivered_at"] is not None
        assert isinstance(d["queue_seconds"], float)
        assert d["trace_id"] == req.trace_id

    def test_rejected_response_roundtrip(self, engine):
        req = make_request(deadline=-1.0)
        t = engine.submit(req)
        d = roundtrip(t.response.to_dict())
        assert d["status"] == "rejected"
        assert d["rejection"]["reason"] == "deadline_exceeded"
        assert d["rejection"]["trace_id"] == req.trace_id
        assert d["delivered_at"] is None
        assert d["trace_id"] == req.trace_id

    def test_ticket_roundtrip_pending_and_done(self, engine):
        t = engine.submit(make_request())
        pending = roundtrip(t.to_dict())
        assert pending["done"] is False
        assert pending["response"] is None
        assert pending["request_id"] == t.request_id
        assert pending["submitted_at"] == 0.0  # scripted clock
        assert pending["trace_id"] == t.request.trace_id
        assert pending["request"]["trace_id"] == t.request.trace_id
        engine.flush()
        done = roundtrip(t.to_dict())
        assert done["done"] is True
        assert done["response"]["status"] == "ok"
        assert done["response"]["trace_id"] == t.request.trace_id
        assert done["request"] == pending["request"]
