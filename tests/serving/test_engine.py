"""Tests for the coalescing engine: admission, batching, scatter-back,
backpressure, and fault containment - all under scripted clocks."""

import numpy as np
import pytest

from repro.chaos import ChaosBackend, RaiseInjector
from repro.runtime import BatchRuntime
from repro.runtime.backends import get_backend
from repro.serving import (
    REJECT_REASONS,
    CoalescingEngine,
    Rejection,
    Request,
    ScriptedClock,
    TenantCacheShards,
)
from tests.strategies import make_batch, make_rhs


def solve_request(tenant, nb=3, max_size=12, seed=0, **kw):
    batch = make_batch(nb, max_size, seed=seed, dominant=True)
    return Request(
        tenant=tenant,
        batch=batch,
        kind="solve",
        rhs=make_rhs(batch, seed=seed + 1000),
        **kw,
    )


class TestAdmission:
    def test_rejection_validates_reason(self):
        with pytest.raises(ValueError, match="unknown rejection"):
            Rejection("bogus")
        r = Rejection("queue_full", {"depth": 3})
        assert r.to_dict() == {
            "reason": "queue_full", "detail": {"depth": 3},
            "retry_after": None, "trace_id": None,
        }
        assert set(REJECT_REASONS) >= {"queue_full", "circuit_open"}

    def test_invalid_requests_shed_with_problem(self):
        eng = CoalescingEngine()
        batch = make_batch(2, 8, seed=0, dominant=True)
        cases = [
            Request(tenant="t", batch=batch, kind="solve"),  # no rhs
            Request(tenant="t", batch=batch, kind="warp"),  # bad kind
            Request(  # geometry mismatch
                tenant="t",
                batch=batch,
                kind="solve",
                rhs=make_rhs(make_batch(3, 8, seed=1, dominant=True), 2),
            ),
            Request(  # setup with rhs
                tenant="t",
                batch=batch,
                kind="setup",
                rhs=make_rhs(batch, seed=2),
            ),
        ]
        for req in cases:
            t = eng.submit(req)
            assert t.done
            assert t.response.status == "rejected"
            assert t.response.rejection.reason == "invalid_request"
            assert t.response.rejection.detail["problem"]
        assert eng.stats["rejected"]["invalid_request"] == len(cases)
        assert eng.stats["submitted"] == 0  # shed before admission

    def test_batch_too_large_is_structured(self):
        eng = CoalescingEngine(max_batch_blocks=4)
        t = eng.submit(solve_request("t", nb=5))
        assert t.response.rejection.reason == "batch_too_large"
        assert t.response.rejection.detail["max_batch_blocks"] == 4

    def test_queue_full_backpressure(self):
        eng = CoalescingEngine(max_pending=2)
        t1 = eng.submit(solve_request("a", seed=1))
        t2 = eng.submit(solve_request("b", seed=2))
        t3 = eng.submit(solve_request("c", seed=3))
        assert not t1.done and not t2.done
        assert t3.response.rejection.reason == "queue_full"
        # a flush drains the queue and admission resumes
        eng.flush()
        t4 = eng.submit(solve_request("d", seed=4))
        assert not t4.done

    def test_circuit_open_sheds_new_work(self):
        clock = ScriptedClock()
        rt = BatchRuntime(
            backend="binned",
            fallback=("numpy",),
            breaker_threshold=1,
            breaker_cooldown=100.0,
            clock=clock,
        )
        rt.breakers.breaker("binned").record_failure()  # trip it open
        eng = CoalescingEngine(runtime=rt, clock=clock)
        t = eng.submit(solve_request("t"))
        assert t.response.rejection.reason == "circuit_open"
        # cooldown elapses -> half-open probes are allowed again
        clock.advance(101.0)
        t2 = eng.submit(solve_request("t"))
        assert not t2.done

    def test_close_strands_pending_as_not_running(self):
        eng = CoalescingEngine()
        t1 = eng.submit(solve_request("a", seed=1))
        assert eng.close() == 1
        assert t1.response.rejection.reason == "not_running"
        t2 = eng.submit(solve_request("b", seed=2))
        assert t2.response.rejection.reason == "not_running"


class TestCoalescing:
    def test_flush_preserves_admission_order(self):
        clock = ScriptedClock()
        eng = CoalescingEngine(clock=clock)
        reqs = [solve_request(f"t{i}", seed=i) for i in range(5)]
        tickets = []
        for i, req in enumerate(reqs):
            tickets.append(eng.submit(req))
            clock.advance(1.0)
        responses = eng.flush()
        assert [r.tenant for r in responses] == [
            f"t{i}" for i in range(5)
        ]
        # queue age under the scripted clock: first in waits longest
        assert [r.queue_seconds for r in responses] == [
            5.0, 4.0, 3.0, 2.0, 1.0,
        ]
        assert all(t.response is r for t, r in zip(tickets, responses))
        assert responses[0].coalesced_requests == 5
        assert eng.stats["executions"] == 1
        assert eng.coalescing_ratio == 5.0

    def test_chunking_respects_max_batch_blocks(self):
        eng = CoalescingEngine(max_batch_blocks=5)
        for i in range(4):
            eng.submit(solve_request(f"t{i}", nb=2, seed=i))
        responses = eng.flush()
        # 8 blocks at a 5-block bound -> two chunks of 2 requests
        assert eng.stats["executions"] == 2
        assert all(r.coalesced_blocks <= 5 for r in responses)
        assert all(r.status == "ok" for r in responses)

    def test_incompatible_jobs_never_merge(self):
        eng = CoalescingEngine()
        eng.submit(solve_request("a", seed=1, method="lu"))
        eng.submit(solve_request("b", seed=2, method="gje"))
        responses = eng.flush()
        assert eng.stats["executions"] == 2
        assert all(r.coalesced_requests == 1 for r in responses)
        assert all(r.status == "ok" for r in responses)

    def test_results_bit_identical_to_solo(self):
        eng = CoalescingEngine()
        reqs = [
            solve_request(f"t{i}", nb=2 + i, max_size=4 * (i + 1), seed=i)
            for i in range(4)
        ]
        for req in reqs:
            eng.submit(req)
        responses = eng.flush()
        for req, resp in zip(reqs, responses):
            solo = BatchRuntime(cache=False).factorize(
                req.batch, use_cache=False
            )
            np.testing.assert_array_equal(solo.info, resp.info)
            np.testing.assert_array_equal(
                solo.solve(req.rhs).data, resp.solution.data
            )

    def test_setup_jobs_return_usable_handles(self):
        eng = CoalescingEngine()
        batch = make_batch(3, 8, seed=5, dominant=True)
        t = eng.submit(Request(tenant="t", batch=batch, kind="setup"))
        resp = eng.flush()[0]
        assert resp.status == "ok"
        assert resp.solution is None
        rhs = make_rhs(batch, seed=6)
        out = eng.apply("t", resp.handle, rhs)
        assert out.status == "ok"
        solo = BatchRuntime(cache=False).factorize(
            batch, use_cache=False
        )
        np.testing.assert_array_equal(
            out.solution.data, solo.solve(rhs).data
        )

    def test_empty_flush_is_noop(self):
        eng = CoalescingEngine()
        assert eng.flush() == []
        assert eng.stats["flushes"] == 0


class TestSingularIsolation:
    def _singular_request(self, tenant, seed=0):
        batch = make_batch(3, 8, seed=seed, dominant=True)
        m = int(batch.sizes[1])
        batch.data[1, :m, :m] = 0.0
        return Request(tenant=tenant, batch=batch, kind="setup")

    def test_singular_tenant_fails_alone(self):
        eng = CoalescingEngine()
        good = solve_request("good", seed=1)
        eng.submit(self._singular_request("bad", seed=2))
        eng.submit(good)
        bad_resp, good_resp = eng.flush()
        assert bad_resp.status == "failed"
        assert bad_resp.error == "singular_blocks"
        assert bad_resp.info is not None and bad_resp.info[1] > 0
        assert good_resp.status == "ok"
        solo = BatchRuntime(cache=False).factorize(
            good.batch, use_cache=False
        )
        np.testing.assert_array_equal(solo.info, good_resp.info)
        np.testing.assert_array_equal(
            solo.solve(good.rhs).data, good_resp.solution.data
        )

    def test_substitution_policy_degrades_in_place(self):
        eng = CoalescingEngine()
        req = self._singular_request("t", seed=3)
        req.on_singular = "identity"
        eng.submit(req)
        resp = eng.flush()[0]
        assert resp.status == "ok"
        assert (resp.info == 0).all()  # substitution resolves the report
        deg = resp.handle.shared.degradation
        assert deg is not None
        assert deg.original_info[resp.handle.indices].sum() > 0


class TestTenantCaching:
    def test_repeat_submission_hits_shard(self):
        shards = TenantCacheShards()
        eng = CoalescingEngine(shards=shards)
        req = solve_request("t", seed=1)
        eng.submit(req)
        first = eng.flush()[0]
        again = eng.submit(req)
        assert again.done and again.response.cache_hit
        np.testing.assert_array_equal(
            again.response.solution.data, first.solution.data
        )
        assert eng.stats["cache_hits"] == 1

    def test_cache_is_tenant_scoped(self):
        shards = TenantCacheShards()
        eng = CoalescingEngine(shards=shards)
        req = solve_request("alice", seed=1)
        eng.submit(req)
        eng.flush()
        # same content, different tenant: no cross-tenant hit
        other = Request(
            tenant="bob", batch=req.batch, kind="solve", rhs=req.rhs
        )
        t = eng.submit(other)
        assert not t.done

    def test_tainted_executions_never_cached(self):
        chaos = ChaosBackend(
            get_backend("binned"),
            [RaiseInjector("factorize", rate=1.0)],
            seed=0,
        )
        rt = BatchRuntime(backend=chaos, fallback=("numpy",), cache=False)
        shards = TenantCacheShards()
        eng = CoalescingEngine(runtime=rt, shards=shards)
        eng.submit(solve_request("t", seed=1))
        resp = eng.flush()[0]
        assert resp.status == "ok"  # served despite the fault
        assert chaos.events  # the fault fired
        assert shards.stats()["entries"] == 0  # but nothing was cached


class TestApply:
    def test_foreign_handle_rejected(self):
        eng = CoalescingEngine()
        req = solve_request("owner", seed=1)
        eng.submit(req)
        resp = eng.flush()[0]
        out = eng.apply("thief", resp.handle, req.rhs)
        assert out.status == "rejected"
        assert out.rejection.reason == "foreign_handle"
        assert out.rejection.detail["owner"] == "owner"

    def test_apply_after_close_rejected(self):
        eng = CoalescingEngine()
        req = solve_request("t", seed=1)
        eng.submit(req)
        resp = eng.flush()[0]
        eng.close()
        out = eng.apply("t", resp.handle, req.rhs)
        assert out.rejection.reason == "not_running"

    def test_apply_geometry_failure_is_structured(self):
        eng = CoalescingEngine()
        req = solve_request("t", nb=3, seed=1)
        eng.submit(req)
        resp = eng.flush()[0]
        wrong = make_rhs(make_batch(5, 8, seed=9, dominant=True), 1)
        out = eng.apply("t", resp.handle, wrong)
        assert out.status == "failed"
        assert "geometry" in out.error


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError, match="max_pending"):
            CoalescingEngine(max_pending=0)
        with pytest.raises(ValueError, match="max_batch_blocks"):
            CoalescingEngine(max_batch_blocks=0)

    def test_response_to_dict_serializes(self):
        eng = CoalescingEngine()
        eng.submit(solve_request("t", seed=1))
        d = eng.flush()[0].to_dict()
        assert d["status"] == "ok"
        assert isinstance(d["info"], list)
        assert d["coalesced_requests"] == 1
