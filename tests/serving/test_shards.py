"""Tests for per-tenant cache shards: isolation, TTL, budgets."""

import pytest

from repro.serving import ScriptedClock, TenantCacheShards


class _Value:
    def __init__(self, nbytes=0):
        self.nbytes = nbytes


class TestShardLifecycle:
    def test_lazy_creation_and_reuse(self):
        shards = TenantCacheShards()
        assert len(shards) == 0
        a = shards.shard("alice")
        assert shards.shard("alice") is a
        assert len(shards) == 1
        assert shards.tenants() == ["alice"]

    def test_rejects_nonpositive_max_tenants(self):
        with pytest.raises(ValueError, match="max_tenants"):
            TenantCacheShards(max_tenants=0)

    def test_max_tenants_evicts_least_recently_touched(self):
        shards = TenantCacheShards(max_tenants=2)
        shards.put("a", "k", 1)
        shards.put("b", "k", 2)
        shards.get("a", "k")  # refresh a's recency
        shards.put("c", "k", 3)  # evicts b, the stalest
        assert set(shards.tenants()) == {"a", "c"}
        assert shards.get("a", "k") == 1
        assert shards.stats()["shard_evictions"] == 1
        # b's shard is gone entirely - a re-touch starts cold
        assert shards.get("b", "k") is None

    def test_invalidate_one_tenant_or_all(self):
        shards = TenantCacheShards()
        shards.put("a", "k1", 1)
        shards.put("a", "k2", 2)
        shards.put("b", "k1", 3)
        assert shards.invalidate("a") == 2
        assert shards.get("b", "k1") == 3  # b untouched
        assert shards.invalidate() == 1
        assert len(shards) == 0
        assert shards.invalidate("ghost") == 0


class TestTenantIsolation:
    def test_eviction_pressure_stays_in_shard(self):
        shards = TenantCacheShards(per_tenant_entries=2)
        shards.put("victim", "k", "keep me")
        for i in range(10):  # hammer another tenant far past capacity
            shards.put("noisy", f"k{i}", i)
        assert shards.get("victim", "k") == "keep me"
        assert shards.shard("noisy").stats.entries == 2
        assert shards.shard("victim").stats.evictions == 0

    def test_byte_budget_is_per_tenant(self):
        shards = TenantCacheShards(per_tenant_bytes=100)
        shards.put("a", "k", _Value(nbytes=80))
        shards.put("b", "k", _Value(nbytes=80))
        # both fit: the budget is per shard, not global
        assert shards.get("a", "k") is not None
        assert shards.get("b", "k") is not None
        shards.put("a", "k2", _Value(nbytes=80))  # evicts a's first
        assert shards.get("a", "k") is None
        assert shards.get("b", "k") is not None  # b untouched

    def test_keys_do_not_leak_across_tenants(self):
        shards = TenantCacheShards()
        shards.put("alice", "shared-key", "alice's")
        assert shards.get("bob", "shared-key") is None
        assert shards.get("alice", "shared-key") == "alice's"


class TestTtl:
    def test_shared_scripted_clock_expires_entries(self):
        clock = ScriptedClock()
        shards = TenantCacheShards(ttl_seconds=10.0, clock=clock)
        shards.put("a", "k", 1)
        clock.advance(5.0)
        assert shards.get("a", "k") == 1
        clock.advance(5.0)  # now at the TTL boundary
        assert shards.get("a", "k") is None
        assert shards.shard("a").stats.eviction_reasons["ttl"] == 1

    def test_ttl_is_per_entry_not_per_shard(self):
        clock = ScriptedClock()
        shards = TenantCacheShards(ttl_seconds=10.0, clock=clock)
        shards.put("a", "old", 1)
        clock.advance(6.0)
        shards.put("a", "new", 2)
        clock.advance(6.0)  # old is 12s, new is 6s
        assert shards.get("a", "old") is None
        assert shards.get("a", "new") == 2


class TestStats:
    def test_aggregation_across_shards(self):
        shards = TenantCacheShards()
        shards.put("a", "k", _Value(nbytes=10))
        shards.put("b", "k", _Value(nbytes=20))
        shards.get("a", "k")
        shards.get("a", "miss")
        s = shards.stats()
        assert s["tenants"] == 2
        assert s["entries"] == 2
        assert s["bytes"] == 30
        assert s["hits"] == 1
        assert s["misses"] == 1
        assert s["hit_rate"] == 0.5

    def test_empty_stats(self):
        s = TenantCacheShards().stats()
        assert s["tenants"] == 0
        assert s["hit_rate"] == 0.0
        assert s["eviction_reasons"] == {}
