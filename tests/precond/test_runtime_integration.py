"""Block-Jacobi setup/apply routed through the repro.runtime executor.

The contract: switching the preconditioner onto any runtime backend
must not change what it computes - only how (binned dispatch, caching,
instrumentation).  The legacy direct-kernel path stays the reference.
"""

import numpy as np
import pytest

from repro.precond import BlockJacobiPreconditioner
from repro.runtime import BatchRuntime, available_backends
from repro.sparse import CsrMatrix, fem_block_2d

METHODS = ("lu", "gh", "ght", "gje", "cholesky")


@pytest.fixture(scope="module")
def fem():
    return fem_block_2d(8, 8, 4, seed=0)


def _singular_matrix():
    # block [0,0;0,0] at bound 2 makes the first diagonal block singular
    D = np.eye(8)
    D[0, 0] = D[1, 1] = 0.0
    D[0, 1] = D[1, 0] = 0.0
    D[2:, 2:] += np.diag(np.arange(6) + 1.0)
    return CsrMatrix.from_dense(D)


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.filterwarnings("ignore:cholesky block-Jacobi")
    def test_apply_matches_legacy_path(self, fem, backend, method):
        from repro.runtime.backends import BACKENDS

        if method not in BACKENDS[backend].supported_methods:
            pytest.skip(f"{backend} backend does not support {method}")
        legacy = BlockJacobiPreconditioner(method, 16).setup(fem)
        routed = BlockJacobiPreconditioner(
            method, 16, backend=backend
        ).setup(fem)
        x = np.linspace(-1, 1, fem.n_rows)
        np.testing.assert_allclose(
            routed.apply(x), legacy.apply(x), rtol=1e-12, atol=1e-14
        )

    def test_runtime_report_recorded(self, fem):
        M = BlockJacobiPreconditioner("lu", 16, backend="binned").setup(fem)
        rt = M.runtime_report
        assert rt is not None
        assert rt.backend == "binned"
        assert rt.nb == M.block_sizes.size
        assert M.report.runtime is rt
        assert "runtime[binned]" in M.report.summary()

    def test_legacy_path_records_no_runtime_report(self, fem):
        M = BlockJacobiPreconditioner("lu", 16).setup(fem)
        assert M.runtime_report is None
        assert M.report.runtime is None

    def test_conflicting_runtime_and_backend_rejected(self):
        rt = BatchRuntime(backend="numpy")
        with pytest.raises(ValueError, match="backend"):
            BlockJacobiPreconditioner("lu", 16, runtime=rt,
                                      backend="binned")

    def test_matching_runtime_and_backend_accepted(self, fem):
        rt = BatchRuntime(backend="binned")
        M = BlockJacobiPreconditioner(
            "lu", 16, runtime=rt, backend="binned"
        ).setup(fem)
        assert M.runtime_report is rt.last_report


class TestRuntimeCaching:
    def test_shared_runtime_caches_repeated_setup(self, fem):
        rt = BatchRuntime()
        BlockJacobiPreconditioner("lu", 16, runtime=rt).setup(fem)
        assert rt.last_report.cache_hit is False
        M2 = BlockJacobiPreconditioner("lu", 16, runtime=rt).setup(fem)
        assert rt.last_report.cache_hit is True
        assert rt.cache_stats.hits == 1
        # the cached factors still answer applies correctly
        legacy = BlockJacobiPreconditioner("lu", 16).setup(fem)
        x = np.arange(float(fem.n_rows))
        np.testing.assert_allclose(
            M2.apply(x), legacy.apply(x), rtol=1e-12, atol=1e-14
        )

    def test_different_bound_misses(self, fem):
        rt = BatchRuntime()
        BlockJacobiPreconditioner("lu", 16, runtime=rt).setup(fem)
        BlockJacobiPreconditioner("lu", 8, runtime=rt).setup(fem)
        assert rt.cache_stats.hits == 0


class TestRuntimeDegradation:
    @pytest.mark.parametrize("backend", ["binned", "numpy"])
    def test_identity_policy_matches_legacy(self, backend):
        A = _singular_matrix()
        legacy = BlockJacobiPreconditioner(
            "lu", 2, on_singular="identity"
        ).setup(A)
        routed = BlockJacobiPreconditioner(
            "lu", 2, on_singular="identity", backend=backend
        ).setup(A)
        np.testing.assert_array_equal(
            routed.report.action, legacy.report.action
        )
        assert routed.report.n_identity == legacy.report.n_identity > 0
        x = np.ones(A.n_rows)
        np.testing.assert_allclose(routed.apply(x), legacy.apply(x))

    def test_raise_policy_still_raises(self):
        # the preconditioner converts the kernel's SingularBlockError
        # into its documented ValueError, runtime path included
        with pytest.raises(ValueError, match="singular"):
            BlockJacobiPreconditioner(
                "lu", 2, on_singular="raise", backend="binned"
            ).setup(_singular_matrix())

    def test_cholesky_fallback_through_runtime(self):
        # indefinite but nonsingular diagonal blocks: cholesky must warn
        # and fall back to LU, exactly like the legacy path
        D = np.diag(np.r_[-np.ones(4), np.ones(4)])
        D += 0.01 * np.eye(8)
        A = CsrMatrix.from_dense(D)
        with pytest.warns(UserWarning, match="not SPD"):
            routed = BlockJacobiPreconditioner(
                "cholesky", 4, backend="binned"
            ).setup(A)
        assert routed.report.cholesky_lu_fallback
        assert routed.report.effective_method == "lu"
        with pytest.warns(UserWarning, match="not SPD"):
            legacy = BlockJacobiPreconditioner("cholesky", 4).setup(A)
        x = np.linspace(1, 2, A.n_rows)
        np.testing.assert_allclose(routed.apply(x), legacy.apply(x))


class TestSetupResilience:
    def test_fallback_events_surface_on_setup_report(self, fem):
        from repro.chaos import ChaosBackend, RaiseInjector
        from repro.runtime.backends import get_backend

        chaos = ChaosBackend(
            get_backend("binned"), [RaiseInjector("factorize", 1.0)],
            seed=0,
        )
        rt = BatchRuntime(backend=chaos, fallback=("numpy",))
        M = BlockJacobiPreconditioner(
            method="lu", max_block_size=8, runtime=rt
        ).setup(fem)
        rep = M.report
        assert rep.degraded_execution
        assert rep.resilience_events
        assert "resilience" in rep.summary()
        # the preconditioner still works: apply is finite
        y = M.apply(np.ones(fem.n_rows))
        assert np.isfinite(y).all()

    def test_fault_free_setup_reports_clean(self, fem):
        rt = BatchRuntime(backend="binned", fallback=("numpy",))
        M = BlockJacobiPreconditioner(
            method="lu", max_block_size=8, runtime=rt
        ).setup(fem)
        rep = M.report
        assert not rep.degraded_execution
        assert rep.resilience_events == []
        assert rep.quarantined_bins == []
        assert "resilience" not in rep.summary()

    def test_rebuild_refactorizes(self, fem):
        rt = BatchRuntime(backend="binned")
        M = BlockJacobiPreconditioner(
            method="lu", max_block_size=8, runtime=rt
        ).setup(fem)
        before = M.apply(np.ones(fem.n_rows))
        out = M.rebuild()
        assert out is M
        np.testing.assert_allclose(
            M.apply(np.ones(fem.n_rows)), before
        )
        # the shared runtime cache was invalidated on the way
        assert rt.cache_stats.invalidations >= 1

    def test_rebuild_before_setup_rejected(self):
        M = BlockJacobiPreconditioner(method="lu", max_block_size=8)
        with pytest.raises(RuntimeError, match="setup"):
            M.rebuild()
