"""Tests for the preconditioners (repro.precond)."""

import contextlib

import numpy as np
import pytest

from repro.precond import (
    BlockJacobiPreconditioner,
    IdentityPreconditioner,
    ScalarJacobiPreconditioner,
)
from repro.sparse import CsrMatrix, circuit_like, fem_block_2d, laplacian_2d

METHODS = ("lu", "gh", "ght", "gje")


@pytest.fixture(scope="module")
def fem():
    return fem_block_2d(8, 8, 4, seed=0)


class TestIdentity:
    def test_apply_is_copy(self, fem):
        M = IdentityPreconditioner().setup(fem)
        x = np.arange(float(fem.n_rows))
        y = M.apply(x)
        np.testing.assert_array_equal(y, x)
        assert y is not x


class TestScalarJacobi:
    def test_apply_divides_by_diagonal(self, fem):
        M = ScalarJacobiPreconditioner().setup(fem)
        x = np.ones(fem.n_rows)
        np.testing.assert_allclose(M.apply(x), 1.0 / fem.diagonal())

    def test_zero_diagonal_left_unscaled(self):
        D = np.array([[0.0, 1.0], [1.0, 2.0]])
        M = ScalarJacobiPreconditioner().setup(CsrMatrix.from_dense(D))
        np.testing.assert_array_equal(M.apply(np.ones(2)), [1.0, 0.5])

    def test_apply_before_setup(self):
        with pytest.raises(RuntimeError):
            ScalarJacobiPreconditioner().apply(np.ones(3))

    def test_shape_check(self, fem):
        M = ScalarJacobiPreconditioner().setup(fem)
        with pytest.raises(ValueError):
            M.apply(np.ones(fem.n_rows + 1))


class TestBlockJacobi:
    @pytest.mark.parametrize("method", METHODS)
    def test_apply_equals_dense_block_solve(self, fem, method):
        M = BlockJacobiPreconditioner(method=method, max_block_size=16)
        M.setup(fem)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(fem.n_rows)
        y = M.apply(x)
        starts = np.concatenate([[0], np.cumsum(M.block_sizes)])
        for b in range(0, M.block_sizes.size, 3):
            s, m = int(starts[b]), int(M.block_sizes[b])
            blk = fem.extract_block(s, m)
            ref = np.linalg.solve(blk, x[s : s + m])
            np.testing.assert_allclose(y[s : s + m], ref, rtol=1e-8,
                                       atol=1e-10)

    @pytest.mark.parametrize("method", METHODS)
    def test_methods_agree(self, fem, method):
        base = BlockJacobiPreconditioner("lu", 16).setup(fem)
        other = BlockJacobiPreconditioner(method, 16).setup(fem)
        x = np.linspace(-1, 1, fem.n_rows)
        np.testing.assert_allclose(
            other.apply(x), base.apply(x), rtol=1e-8, atol=1e-10
        )

    def test_explicit_block_sizes(self, fem):
        sizes = np.full(fem.n_rows // 4, 4)
        M = BlockJacobiPreconditioner("lu", block_sizes=sizes).setup(fem)
        np.testing.assert_array_equal(M.block_sizes, sizes)

    def test_explicit_block_sizes_must_cover(self, fem):
        with pytest.raises(ValueError, match="cover"):
            BlockJacobiPreconditioner(
                "lu", block_sizes=np.array([4, 4])
            ).setup(fem)

    def test_bound_respected(self, fem):
        for bound in (8, 12, 16, 24, 32):
            M = BlockJacobiPreconditioner("lu", bound).setup(fem)
            assert M.block_sizes.max() <= bound

    def test_scalar_limit_matches_scalar_jacobi(self, fem):
        Mb = BlockJacobiPreconditioner("lu", 1).setup(fem)
        Ms = ScalarJacobiPreconditioner().setup(fem)
        x = np.ones(fem.n_rows)
        np.testing.assert_allclose(Mb.apply(x), Ms.apply(x), rtol=1e-12)

    def test_singular_block_raises(self):
        D = np.eye(4)
        D[2, 2] = 0.0
        A = CsrMatrix.from_dense(D)
        with pytest.raises(ValueError, match="singular"):
            BlockJacobiPreconditioner(
                "lu", block_sizes=np.array([2, 2])
            ).setup(A)

    def test_cholesky_falls_back_to_lu_on_nonspd(self, fem):
        # the documented contract: non-SPD blocks trigger a warning and
        # a whole-batch LU refactorization, never an exception
        with pytest.warns(UserWarning, match="falling back to batched LU"):
            M = BlockJacobiPreconditioner("cholesky", 16).setup(fem)
        assert M.report.cholesky_lu_fallback
        assert M.report.effective_method == "lu"
        assert M.report.n_nonspd > 0
        x = np.ones(fem.n_rows)
        y_lu = BlockJacobiPreconditioner("lu", 16).setup(fem).apply(x)
        np.testing.assert_allclose(M.apply(x), y_lu, rtol=1e-12)

    def test_cholesky_on_spd(self):
        A = laplacian_2d(10, 10)
        M = BlockJacobiPreconditioner("cholesky", 8).setup(A)
        x = np.ones(100)
        y_lu = BlockJacobiPreconditioner("lu", 8).setup(A).apply(x)
        np.testing.assert_allclose(M.apply(x), y_lu, rtol=1e-10)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(method="qr")

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(max_block_size=0)
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(max_block_size=64)

    def test_apply_before_setup(self):
        with pytest.raises(RuntimeError):
            BlockJacobiPreconditioner().apply(np.ones(4))

    def test_nonsquare_rejected(self):
        A = CsrMatrix(2, 3, [0, 1, 2], [0, 1], [1.0, 1.0])
        with pytest.raises(ValueError, match="square"):
            BlockJacobiPreconditioner().setup(A)

    def test_setup_seconds_recorded(self, fem):
        M = BlockJacobiPreconditioner("lu", 16).setup(fem)
        assert M.setup_seconds > 0

    def test_fp32_blocks(self, fem):
        M = BlockJacobiPreconditioner("lu", 16, dtype=np.float32).setup(fem)
        y64 = BlockJacobiPreconditioner("lu", 16).setup(fem).apply(
            np.ones(fem.n_rows)
        )
        y32 = M.apply(np.ones(fem.n_rows))
        assert np.abs(y32 - y64).max() < 1e-3
        assert y32.dtype == np.float64  # result promoted for the solver

    def test_circuit_matrix_blocks(self):
        A = circuit_like(800, seed=2, hub_degree=100)
        M = BlockJacobiPreconditioner("lu", 32).setup(A)
        y = M.apply(np.ones(800))
        assert np.isfinite(y).all()

    def test_apply_bad_shape_message_names_length(self, fem):
        M = BlockJacobiPreconditioner("lu", 16).setup(fem)
        with pytest.raises(
            ValueError, match=f"vector of length {fem.n_rows + 1}"
        ):
            M.apply(np.ones(fem.n_rows + 1))
        # 2-D input reports the full shape, not a stray tuple element
        with pytest.raises(ValueError, match=r"shape \(2, 3\)"):
            M.apply(np.ones((2, 3)))


def singular_block_matrix(n=12, bad_block=1, bs=4, seed=5):
    """Dense-backed CSR whose diagonal block ``bad_block`` is singular."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) * 0.1 + 4.0 * np.eye(n)
    s = bad_block * bs
    A[s + 2, s : s + bs] = 0.0  # zero row inside the diagonal block
    return CsrMatrix.from_dense(A), np.full(n // bs, bs)


class TestDegradationPolicies:
    ALL_METHODS = METHODS + ("cholesky",)

    def setup_precond(self, method, policy):
        A, sizes = singular_block_matrix()
        M = BlockJacobiPreconditioner(
            method, block_sizes=sizes, on_singular=policy
        )
        if method == "cholesky":
            # non-symmetric blocks: the documented LU fallback fires
            with pytest.warns(UserWarning, match="falling back"):
                M.setup(A)
        else:
            M.setup(A)
        return A, M

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_raise_policy_preserves_error(self, method):
        A, sizes = singular_block_matrix()
        M = BlockJacobiPreconditioner(
            method, block_sizes=sizes, on_singular="raise"
        )
        ctx = (
            pytest.warns(UserWarning, match="falling back")
            if method == "cholesky"
            else contextlib.nullcontext()
        )
        with ctx, pytest.raises(ValueError, match="singular"):
            M.setup(A)

    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("policy", ["identity", "scalar", "shift"])
    def test_policies_give_finite_apply(self, method, policy):
        A, M = self.setup_precond(method, policy)
        y = M.apply(np.ones(A.n_rows))
        assert np.isfinite(y).all()
        assert M.report.n_singular == 1
        assert M.report.n_fallbacks >= 1
        assert not M.report.clean
        # healthy blocks still solve exactly
        blk = A.extract_block(8, 4)
        ref = np.linalg.solve(blk, np.ones(4))
        np.testing.assert_allclose(y[8:12], ref, rtol=1e-6, atol=1e-8)

    def test_identity_policy_passes_bad_block_through(self):
        A, M = self.setup_precond("lu", "identity")
        x = np.arange(float(A.n_rows))
        y = M.apply(x)
        np.testing.assert_allclose(y[4:8], x[4:8])  # identity on block 1
        assert M.report.n_identity == 1

    def test_shift_policy_records_sigma(self):
        _, M = self.setup_precond("lu", "shift")
        assert M.report.n_shift + M.report.n_identity == 1
        if M.report.n_shift:
            assert M.report.shift[1] > 0

    def test_bad_policy_name_rejected(self):
        with pytest.raises(ValueError, match="on_singular"):
            BlockJacobiPreconditioner("lu", 16, on_singular="panic")

    def test_info_keeps_original_status(self):
        _, M = self.setup_precond("lu", "identity")
        assert np.count_nonzero(M.info) == 1
        assert M.info[1] > 0


class TestSetupReport:
    def test_clean_setup_report(self, fem):
        M = BlockJacobiPreconditioner("lu", 16).setup(fem)
        r = M.report
        assert r.clean
        assert r.n_blocks == M.block_sizes.size
        assert r.n_singular == 0 and r.n_fallbacks == 0
        assert r.effective_method == "lu"
        assert np.isfinite(r.max_condition)
        assert "all blocks factorized" in r.summary()

    def test_condition_estimates_match_dense(self, fem):
        M = BlockJacobiPreconditioner("lu", 16).setup(fem)
        starts = np.concatenate([[0], np.cumsum(M.block_sizes)])
        for b in (0, 3, 7):
            s, m = int(starts[b]), int(M.block_sizes[b])
            blk = fem.extract_block(s, m)
            ref = np.linalg.norm(blk, 1) * np.linalg.norm(
                np.linalg.inv(blk), 1
            )
            np.testing.assert_allclose(
                M.report.condition_estimates[b], ref, rtol=1e-10
            )

    def test_substituted_blocks_report_nan_condition(self):
        A, sizes = singular_block_matrix()
        M = BlockJacobiPreconditioner(
            "lu", block_sizes=sizes, on_singular="identity"
        ).setup(A)
        cond = M.report.condition_estimates
        assert np.isnan(cond[1])
        assert np.isfinite(cond[[0, 2]]).all()

    def test_estimation_can_be_disabled(self, fem):
        M = BlockJacobiPreconditioner(
            "lu", 16, estimate_condition=False
        ).setup(fem)
        assert M.report.condition_estimates is None
        assert np.isnan(M.report.max_condition)

    def test_summary_mentions_degradation(self):
        A, sizes = singular_block_matrix()
        M = BlockJacobiPreconditioner(
            "lu", block_sizes=sizes, on_singular="identity"
        ).setup(A)
        s = M.report.summary()
        assert "identity" in s
        assert "1 singular" in s


class TestBlockSizeValidation:
    def test_zero_size_rejected(self, fem):
        with pytest.raises(ValueError, match="positive"):
            BlockJacobiPreconditioner(
                "lu", block_sizes=np.array([0, 128, 128])
            ).setup(fem)

    def test_negative_size_rejected(self, fem):
        with pytest.raises(ValueError, match="positive"):
            BlockJacobiPreconditioner(
                "lu", block_sizes=np.array([-4, 130, 130])
            ).setup(fem)

    def test_oversized_block_rejected(self, fem):
        with pytest.raises(ValueError, match="exceed"):
            BlockJacobiPreconditioner(
                "lu", block_sizes=np.array([40, 108, 108])
            ).setup(fem)

    def test_non_integer_rejected(self, fem):
        with pytest.raises(ValueError, match="integer"):
            BlockJacobiPreconditioner(
                "lu", block_sizes=np.array([4.5, 4.5])
            ).setup(fem)

    def test_wrong_sum_message_names_totals(self, fem):
        with pytest.raises(ValueError, match="cover"):
            BlockJacobiPreconditioner(
                "lu", block_sizes=np.array([4, 4])
            ).setup(fem)
