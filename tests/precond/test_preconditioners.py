"""Tests for the preconditioners (repro.precond)."""

import numpy as np
import pytest

from repro.precond import (
    BlockJacobiPreconditioner,
    IdentityPreconditioner,
    ScalarJacobiPreconditioner,
)
from repro.sparse import CsrMatrix, circuit_like, fem_block_2d, laplacian_2d

METHODS = ("lu", "gh", "ght", "gje")


@pytest.fixture(scope="module")
def fem():
    return fem_block_2d(8, 8, 4, seed=0)


class TestIdentity:
    def test_apply_is_copy(self, fem):
        M = IdentityPreconditioner().setup(fem)
        x = np.arange(float(fem.n_rows))
        y = M.apply(x)
        np.testing.assert_array_equal(y, x)
        assert y is not x


class TestScalarJacobi:
    def test_apply_divides_by_diagonal(self, fem):
        M = ScalarJacobiPreconditioner().setup(fem)
        x = np.ones(fem.n_rows)
        np.testing.assert_allclose(M.apply(x), 1.0 / fem.diagonal())

    def test_zero_diagonal_left_unscaled(self):
        D = np.array([[0.0, 1.0], [1.0, 2.0]])
        M = ScalarJacobiPreconditioner().setup(CsrMatrix.from_dense(D))
        np.testing.assert_array_equal(M.apply(np.ones(2)), [1.0, 0.5])

    def test_apply_before_setup(self):
        with pytest.raises(RuntimeError):
            ScalarJacobiPreconditioner().apply(np.ones(3))

    def test_shape_check(self, fem):
        M = ScalarJacobiPreconditioner().setup(fem)
        with pytest.raises(ValueError):
            M.apply(np.ones(fem.n_rows + 1))


class TestBlockJacobi:
    @pytest.mark.parametrize("method", METHODS)
    def test_apply_equals_dense_block_solve(self, fem, method):
        M = BlockJacobiPreconditioner(method=method, max_block_size=16)
        M.setup(fem)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(fem.n_rows)
        y = M.apply(x)
        starts = np.concatenate([[0], np.cumsum(M.block_sizes)])
        for b in range(0, M.block_sizes.size, 3):
            s, m = int(starts[b]), int(M.block_sizes[b])
            blk = fem.extract_block(s, m)
            ref = np.linalg.solve(blk, x[s : s + m])
            np.testing.assert_allclose(y[s : s + m], ref, rtol=1e-8,
                                       atol=1e-10)

    @pytest.mark.parametrize("method", METHODS)
    def test_methods_agree(self, fem, method):
        base = BlockJacobiPreconditioner("lu", 16).setup(fem)
        other = BlockJacobiPreconditioner(method, 16).setup(fem)
        x = np.linspace(-1, 1, fem.n_rows)
        np.testing.assert_allclose(
            other.apply(x), base.apply(x), rtol=1e-8, atol=1e-10
        )

    def test_explicit_block_sizes(self, fem):
        sizes = np.full(fem.n_rows // 4, 4)
        M = BlockJacobiPreconditioner("lu", block_sizes=sizes).setup(fem)
        np.testing.assert_array_equal(M.block_sizes, sizes)

    def test_explicit_block_sizes_must_cover(self, fem):
        with pytest.raises(ValueError, match="cover"):
            BlockJacobiPreconditioner(
                "lu", block_sizes=np.array([4, 4])
            ).setup(fem)

    def test_bound_respected(self, fem):
        for bound in (8, 12, 16, 24, 32):
            M = BlockJacobiPreconditioner("lu", bound).setup(fem)
            assert M.block_sizes.max() <= bound

    def test_scalar_limit_matches_scalar_jacobi(self, fem):
        Mb = BlockJacobiPreconditioner("lu", 1).setup(fem)
        Ms = ScalarJacobiPreconditioner().setup(fem)
        x = np.ones(fem.n_rows)
        np.testing.assert_allclose(Mb.apply(x), Ms.apply(x), rtol=1e-12)

    def test_singular_block_raises(self):
        D = np.eye(4)
        D[2, 2] = 0.0
        A = CsrMatrix.from_dense(D)
        with pytest.raises(ValueError, match="singular"):
            BlockJacobiPreconditioner(
                "lu", block_sizes=np.array([2, 2])
            ).setup(A)

    def test_cholesky_requires_spd(self, fem):
        with pytest.raises(ValueError, match="SPD"):
            BlockJacobiPreconditioner("cholesky", 16).setup(fem)

    def test_cholesky_on_spd(self):
        A = laplacian_2d(10, 10)
        M = BlockJacobiPreconditioner("cholesky", 8).setup(A)
        x = np.ones(100)
        y_lu = BlockJacobiPreconditioner("lu", 8).setup(A).apply(x)
        np.testing.assert_allclose(M.apply(x), y_lu, rtol=1e-10)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(method="qr")

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(max_block_size=0)
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(max_block_size=64)

    def test_apply_before_setup(self):
        with pytest.raises(RuntimeError):
            BlockJacobiPreconditioner().apply(np.ones(4))

    def test_nonsquare_rejected(self):
        A = CsrMatrix(2, 3, [0, 1, 2], [0, 1], [1.0, 1.0])
        with pytest.raises(ValueError, match="square"):
            BlockJacobiPreconditioner().setup(A)

    def test_setup_seconds_recorded(self, fem):
        M = BlockJacobiPreconditioner("lu", 16).setup(fem)
        assert M.setup_seconds > 0

    def test_fp32_blocks(self, fem):
        M = BlockJacobiPreconditioner("lu", 16, dtype=np.float32).setup(fem)
        y64 = BlockJacobiPreconditioner("lu", 16).setup(fem).apply(
            np.ones(fem.n_rows)
        )
        y32 = M.apply(np.ones(fem.n_rows))
        assert np.abs(y32 - y64).max() < 1e-3
        assert y32.dtype == np.float64  # result promoted for the solver

    def test_circuit_matrix_blocks(self):
        A = circuit_like(800, seed=2, hub_degree=100)
        M = BlockJacobiPreconditioner("lu", 32).setup(A)
        y = M.apply(np.ones(800))
        assert np.isfinite(y).all()
