"""Observability test fixtures: isolate every process-global.

The SLO engine publishes gauges/counters, the flight recorder is a
process singleton, and the tracer is global - each test gets fresh
instances of all three and restores them afterwards so nothing leaks
into (or out of) the rest of the suite.
"""

import pytest

from repro.obs import set_flight_recorder
from repro.telemetry import get_metrics, set_tracer


@pytest.fixture(autouse=True)
def _clean_observability():
    set_tracer(None)
    get_metrics().reset()
    set_flight_recorder(None)
    yield
    set_tracer(None)
    get_metrics().reset()
    set_flight_recorder(None)
