"""Acceptance: a chaos/overload run must produce a flight-recorder
black box from which one admitted request's full causal chain -
admission -> queue -> coalesced launch (via span link) ->
scatter-back -> delivery (or shed) - is reconstructed
programmatically."""

import json

import numpy as np

from repro.chaos import ChaosBackend, RaiseInjector
from repro.clock import ScriptedClock
from repro.obs import (
    FlightRecorder,
    SLOEngine,
    default_serving_slos,
    format_flight_report,
    reconstruct_chain,
    set_flight_recorder,
    trace_ids_in_dump,
)
from repro.runtime import BatchRuntime
from repro.runtime.backends import get_backend
from repro.serving import CoalescingEngine, Request
from repro.telemetry import tracing
from tests.strategies import make_batch, make_rhs


def _request(tenant, seed, **kw):
    batch = make_batch(3, 12, seed=seed, dominant=True)
    return Request(
        tenant=tenant,
        batch=batch,
        kind="solve",
        rhs=make_rhs(batch, seed=seed + 1000),
        **kw,
    )


def _overload_run(runtime=None):
    """Drive an engine into an admitted-latency burn under a scripted
    clock; returns (dump, engine, slo)."""
    clock = ScriptedClock()
    slo = SLOEngine(
        default_serving_slos(
            latency_threshold=0.05,
            fast_window=1.0,
            slow_window=3.0,
            min_events=6,
        ),
        clock=clock,
    )
    rec = FlightRecorder(capacity=1024, clock=clock)
    set_flight_recorder(rec)  # deep layers funnel into the same box
    rec.attach_slo(slo)
    engine = CoalescingEngine(
        runtime=runtime or BatchRuntime(cache=False),
        clock=clock,
        slo=slo,
        flight=rec,
    )
    with tracing():
        for tick in range(6):
            for i in range(3):
                engine.submit(_request(f"tenant-{i}", 100 * tick + i))
            clock.advance(0.2)  # hold the queue past the SLO bound
            engine.flush()
    assert slo.firing() == ["admitted_latency"]
    assert len(rec.dumps) == 1
    return rec.dumps[0], engine, slo


class TestCausalChainReconstruction:
    def test_full_chain_of_an_admitted_request(self):
        dump, _, _ = _overload_run()
        # the dump is self-contained: reconstruct from its JSON form
        dump = json.loads(json.dumps(dump))
        trace_ids = trace_ids_in_dump(dump)
        assert trace_ids
        complete = 0
        for tid in trace_ids:
            chain = reconstruct_chain(dump, tid)
            if not chain["complete"]:
                continue
            complete += 1
            stages = {s["stage"]: s for s in chain["stages"]}
            assert set(stages) >= {
                "admission", "request", "queue", "launch", "deliver",
            }
            # every per-request stage carries the trace_id
            for name in ("admission", "request", "queue", "deliver"):
                assert stages[name]["attrs"]["trace_id"] == tid
            # fan-in: the shared launch does NOT carry this request's
            # trace_id - it is reachable only through the span link
            assert "trace_id" not in stages["launch"]["attrs"]
            assert chain["outcome"] == "delivered"
        assert complete > 0

    def test_launch_is_shared_across_coalesced_requests(self):
        dump, engine, _ = _overload_run()
        assert engine.stats["executions"] >= 1
        chains = [
            reconstruct_chain(dump, tid)
            for tid in trace_ids_in_dump(dump)
        ]
        launches = [
            next(
                s["span_id"]
                for s in c["stages"]
                if s["stage"] == "launch"
            )
            for c in chains
            if c["complete"]
        ]
        # more complete chains than distinct launches = fan-in worked
        assert len(set(launches)) < len(launches)

    def test_shed_request_chain_reconstructs_without_launch(self):
        clock = ScriptedClock()
        rec = FlightRecorder(capacity=256, clock=clock)
        engine = CoalescingEngine(
            runtime=BatchRuntime(cache=False),
            clock=clock,
            flight=rec,
            max_pending=1,
        )
        with tracing():
            admitted = engine.submit(_request("a", seed=1))
            shed = engine.submit(_request("b", seed=2))
            assert shed.done  # queue_full
            engine.flush()
            dump = rec.dump("manual")
        chain = reconstruct_chain(dump, shed.response.trace_id)
        # a rejected-at-admission request has only the admit span
        assert chain["outcome"] == "shed"
        assert [s["stage"] for s in chain["stages"]] == ["admission"]
        # its shed event is correlated into the chain by trace_id
        assert any(
            e["kind"] == "shed"
            and e["reason"] == "queue_full"
            for e in chain["events"]
        )
        ok = reconstruct_chain(dump, admitted.response.trace_id)
        assert ok["complete"] and ok["outcome"] == "delivered"

    def test_chaos_fault_lands_in_the_same_black_box(self):
        chaos = ChaosBackend(
            get_backend("binned"),
            [RaiseInjector("factorize", rate=1.0)],
            seed=0,
        )
        # a high breaker threshold keeps admissions open so every
        # request still travels the full path (via the numpy fallback)
        runtime = BatchRuntime(
            backend=chaos,
            fallback=("numpy",),
            cache=False,
            breaker_threshold=10_000,
        )
        dump, _, _ = _overload_run(runtime=runtime)
        kinds = {e["kind"] for e in dump["events"]}
        # the executor's fallback (a deep runtime layer) recorded into
        # the same recorder the serving layer dumps from
        assert "runtime_fallback" in kinds
        # and requests still complete their causal chains via numpy
        assert any(
            reconstruct_chain(dump, tid)["complete"]
            for tid in trace_ids_in_dump(dump)
        )

    def test_report_formats_and_mentions_chain(self):
        dump, _, _ = _overload_run()
        text = format_flight_report(dump)
        assert "slo_burn:admitted_latency" in text
        assert "outcome=delivered [complete]" in text
        tid = trace_ids_in_dump(dump)[0]
        text_one = format_flight_report(dump, trace_id=tid)
        assert tid in text_one

    def test_dump_metrics_snapshot_present(self):
        dump, _, _ = _overload_run()
        assert "repro_slo_burn_rate" in dump["metrics"]
        np.testing.assert_allclose(
            dump["flight_recorder"]["horizon"], 30.0
        )
