"""SLO engine unit tests: burn-rate math, multi-window alert
lifecycle, cold-start guards, metrics publication."""

import pytest

from repro.clock import ScriptedClock
from repro.obs import SLO, SLOEngine, default_serving_slos
from repro.telemetry import get_metrics


def _engine(clock, **slo_kw):
    kw = {
        "name": "latency",
        "target": 0.9,  # budget = 0.1, burn math stays round
        "fast_window": 1.0,
        "slow_window": 5.0,
        "burn_threshold": 2.0,
        "min_events": 4,
    }
    kw.update(slo_kw)
    return SLOEngine([SLO(**kw)], clock=clock)


def _feed(eng, clock, good, n, dt=0.05):
    for _ in range(n):
        eng.record("latency", good)
        clock.advance(dt)


class TestSLOValidation:
    def test_target_bounds(self):
        with pytest.raises(ValueError, match="target"):
            SLO(name="x", target=1.0)
        with pytest.raises(ValueError, match="target"):
            SLO(name="x", target=0.0)

    def test_window_ordering(self):
        with pytest.raises(ValueError, match="window"):
            SLO(name="x", fast_window=10.0, slow_window=1.0)

    def test_burn_threshold_positive(self):
        with pytest.raises(ValueError, match="burn_threshold"):
            SLO(name="x", burn_threshold=0.0)

    def test_budget(self):
        assert SLO(name="x", target=0.99).budget == pytest.approx(0.01)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine([SLO(name="a"), SLO(name="a")])


class TestBurnRate:
    def test_all_good_burns_nothing(self):
        clock = ScriptedClock()
        eng = _engine(clock)
        _feed(eng, clock, True, 20)
        snap = eng.snapshot()["slos"]["latency"]
        assert snap["burn_fast"] == 0.0 and snap["burn_slow"] == 0.0
        assert eng.evaluate() == []

    def test_burn_is_bad_fraction_over_budget(self):
        clock = ScriptedClock()
        eng = _engine(clock, min_events=10)
        # 2 bad out of 10 = 20% bad over a 10% budget -> burn 2.0
        for i in range(10):
            eng.record("latency", i >= 8)
            clock.advance(0.01)
        snap = eng.snapshot()["slos"]["latency"]
        assert snap["burn_fast"] == pytest.approx(8.0)

    def test_min_events_cold_start(self):
        clock = ScriptedClock()
        eng = _engine(clock, min_events=10)
        # one catastrophic first sample must not page
        eng.record("latency", False)
        assert eng.evaluate() == []
        snap = eng.snapshot()["slos"]["latency"]
        assert snap["burn_fast"] is None

    def test_samples_age_out_of_windows(self):
        clock = ScriptedClock()
        eng = _engine(clock)
        _feed(eng, clock, False, 8)
        clock.advance(100.0)  # past the slow window
        assert eng.evaluate() == []  # prunes; stale badness never pages
        snap = eng.snapshot()["slos"]["latency"]
        assert snap["window_samples"] == 0
        assert snap["burn_fast"] is None

    def test_unknown_slo_record_ignored(self):
        eng = _engine(ScriptedClock())
        eng.record("nonexistent", False)  # silently dropped
        assert "nonexistent" not in eng


class TestAlertLifecycle:
    def test_firing_needs_both_windows(self):
        clock = ScriptedClock()
        eng = _engine(clock, min_events=4)
        # a fast-window blip: 5 bad samples in 0.25s, then all good.
        # fast burn is huge but the slow window has not accumulated
        # min_events of badness... feed good history first so the
        # slow window exists and stays healthy.
        _feed(eng, clock, True, 80)  # 4s of good history
        _feed(eng, clock, False, 5)
        # slow window: 5 bad / ~85 samples = ~6% bad over 10% budget
        # -> slow burn < 1 < threshold: no alert
        assert eng.evaluate() == []
        assert eng.firing() == []

    def test_sustained_burn_fires_once_then_resolves(self):
        clock = ScriptedClock()
        eng = _engine(clock)
        _feed(eng, clock, True, 10)
        _feed(eng, clock, False, 30)  # 1.5s of pure badness
        fired = eng.evaluate()
        assert [a["state"] for a in fired] == ["firing"]
        assert eng.firing() == ["latency"]
        # still burning: no duplicate alert (edge-triggered)
        _feed(eng, clock, False, 5)
        assert eng.evaluate() == []
        # recovery: good samples + time until both burns < 1.0
        _feed(eng, clock, True, 40)
        clock.advance(10.0)
        resolved = eng.evaluate()
        assert [a["state"] for a in resolved] == ["resolved"]
        assert eng.firing() == []
        assert [a["state"] for a in eng.alerts] == [
            "firing", "resolved",
        ]

    def test_alert_event_shape(self):
        clock = ScriptedClock()
        eng = _engine(clock)
        _feed(eng, clock, False, 30)
        (alert,) = eng.evaluate()
        assert alert["slo"] == "latency"
        assert alert["state"] == "firing"
        assert alert["burn_fast"] >= alert["burn_threshold"]
        assert alert["burn_slow"] >= alert["burn_threshold"]
        assert alert["fast_window"] == 1.0
        assert alert["at"] == pytest.approx(clock())

    def test_callbacks_fire_per_transition(self):
        clock = ScriptedClock()
        eng = _engine(clock)
        seen = []
        eng.on_alert(seen.append)
        _feed(eng, clock, False, 30)
        eng.evaluate()
        assert len(seen) == 1 and seen[0]["state"] == "firing"

    def test_metrics_published(self):
        clock = ScriptedClock()
        eng = _engine(clock)
        _feed(eng, clock, False, 30)
        eng.evaluate()
        snap = get_metrics().snapshot()
        burn = snap["repro_slo_burn_rate"]["values"]
        assert "slo=latency,window=fast" in burn
        assert "slo=latency,window=slow" in burn
        alerts = snap["repro_slo_alerts_total"]["values"]
        assert alerts == {"slo=latency,state=firing": 1.0}


class TestDefaultServingSLOs:
    def test_three_conventional_objectives(self):
        slos = default_serving_slos(latency_threshold=0.025)
        names = [s.name for s in slos]
        assert names == ["admitted_latency", "deadline_hit", "shed_rate"]
        by_name = {s.name: s for s in slos}
        assert by_name["admitted_latency"].threshold == 0.025
        assert by_name["deadline_hit"].threshold is None
        eng = SLOEngine(slos, clock=ScriptedClock())
        assert eng.get("admitted_latency").threshold == 0.025
        assert "shed_rate" in eng
