"""Flight recorder unit tests: ring bounds, horizon, black-box dumps
(valid JSON, monotone timestamps under a scripted clock), SLO
attachment, the process-global accessor, and the SIGUSR2 hook."""

import json
import os
import signal

import pytest

from repro.clock import ScriptedClock
from repro.obs import (
    FlightRecorder,
    SLO,
    SLOEngine,
    get_flight_recorder,
    install_signal_handler,
    record_flight,
    set_flight_recorder,
)
from repro.telemetry import Tracer, tracing


class TestRing:
    def test_capacity_evicts_oldest(self):
        clock = ScriptedClock()
        rec = FlightRecorder(capacity=3, clock=clock)
        for i in range(5):
            rec.record("tick", n=i)
            clock.advance(1.0)
        events = rec.events()
        assert [e["n"] for e in events] == [2, 3, 4]
        assert [e["seq"] for e in events] == [3, 4, 5]

    def test_zero_capacity_disables(self):
        rec = FlightRecorder(capacity=0)
        assert not rec.enabled
        rec.record("tick")
        assert rec.events() == []

    def test_counts_by_kind(self):
        rec = FlightRecorder(clock=ScriptedClock())
        rec.record("a")
        rec.record("a")
        rec.record("b")
        assert rec.counts() == {"a": 2, "b": 1}

    def test_explicit_timestamp_wins(self):
        clock = ScriptedClock()
        clock.advance(50.0)
        rec = FlightRecorder(clock=clock)
        rec.record("stamped", now=7.25)
        (ev,) = rec.events()
        assert ev["ts"] == 7.25

    def test_fields_serialized_native(self):
        import numpy as np

        rec = FlightRecorder(clock=ScriptedClock())
        rec.record("typed", count=np.int64(3), frac=np.float64(0.5))
        (ev,) = rec.events()
        # numpy scalars become JSON-safe values (int64 is not a
        # Python int subclass; float64 already subclasses float)
        assert isinstance(ev["count"], int)
        assert isinstance(ev["frac"], float)
        json.dumps(ev)

    def test_clear(self):
        rec = FlightRecorder(clock=ScriptedClock())
        rec.record("x")
        rec.dump("because")
        rec.clear()
        assert rec.events() == [] and not rec.dumps


class TestDump:
    def test_dump_is_self_contained_valid_json(self):
        clock = ScriptedClock()
        rec = FlightRecorder(clock=clock)
        rec.record("admit", tenant="a")
        clock.advance(1.0)
        rec.record("flush", taken=3)
        doc = rec.dump("test_trigger", extra="context")
        again = json.loads(json.dumps(doc))
        assert again["flight_recorder"]["reason"] == "test_trigger"
        assert again["flight_recorder"]["context"] == {
            "extra": "context"
        }
        assert [e["kind"] for e in again["events"]] == [
            "admit", "flush",
        ]
        assert isinstance(again["metrics"], dict)

    def test_dump_timestamps_monotone_under_scripted_clock(self):
        clock = ScriptedClock()
        rec = FlightRecorder(clock=clock)
        tr = Tracer(clock=clock)
        with tracing(tr):
            for i in range(10):
                with tr.span(f"work{i}"):
                    rec.record("work", i=i)
                    clock.advance(0.5)
            doc = rec.dump("monotone_check")
        ts = [e["ts"] for e in doc["events"]]
        assert ts == sorted(ts)
        span_ts = [s["ts"] for s in doc["spans"]]
        assert span_ts == sorted(span_ts)
        assert all(s["dur"] >= 0.0 for s in doc["spans"])

    def test_horizon_excludes_stale_events(self):
        clock = ScriptedClock()
        rec = FlightRecorder(horizon=10.0, clock=clock)
        rec.record("old")
        clock.advance(100.0)
        rec.record("fresh")
        doc = rec.dump("horizon_check")
        assert [e["kind"] for e in doc["events"]] == ["fresh"]

    def test_spans_empty_without_tracer(self):
        rec = FlightRecorder(clock=ScriptedClock())
        rec.record("x")
        assert rec.dump("no_tracer")["spans"] == []

    def test_spans_include_links_and_open_spans(self):
        clock = ScriptedClock()
        rec = FlightRecorder(clock=clock)
        tr = Tracer(clock=clock)
        with tracing(tr):
            a = tr.begin("req", detached=True)
            launch = tr.begin("launch", detached=True)
            launch.add_link(a)
            tr.end(launch)
            doc = rec.dump("links")  # ``req`` still open
            tr.end(a)
        by_name = {s["name"]: s for s in doc["spans"]}
        assert by_name["launch"]["links"] == [a.span_id]
        assert "req" in by_name  # open span captured too

    def test_max_dumps_bounded(self):
        rec = FlightRecorder(clock=ScriptedClock(), max_dumps=2)
        for i in range(4):
            rec.dump(f"r{i}")
        assert [d["flight_recorder"]["reason"] for d in rec.dumps] == [
            "r2", "r3",
        ]

    def test_dump_records_itself(self):
        rec = FlightRecorder(clock=ScriptedClock())
        rec.dump("why")
        (ev,) = rec.events()
        assert ev["kind"] == "flight_dump" and ev["reason"] == "why"

    def test_dump_to_writes_file(self, tmp_path):
        rec = FlightRecorder(clock=ScriptedClock())
        rec.record("x")
        path = tmp_path / "blackbox.json"
        doc = rec.dump_to(str(path), "file_check")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(doc)
        )


class TestSLOAttachment:
    def _burning_engine(self, clock):
        eng = SLOEngine(
            [SLO(name="latency", target=0.9, fast_window=1.0,
                 slow_window=5.0, min_events=4)],
            clock=clock,
        )
        return eng

    def test_dumps_once_on_firing_only(self):
        clock = ScriptedClock()
        eng = self._burning_engine(clock)
        rec = FlightRecorder(clock=clock)
        rec.attach_slo(eng)
        for _ in range(30):
            eng.record("latency", False)
            clock.advance(0.05)
        eng.evaluate()
        assert len(rec.dumps) == 1
        dump = rec.dumps[0]
        assert dump["flight_recorder"]["reason"] == "slo_burn:latency"
        alert = dump["flight_recorder"]["context"]["alert"]
        assert alert["state"] == "firing"
        # recovery resolves the alert: recorded, but no second dump
        for _ in range(40):
            eng.record("latency", True)
            clock.advance(0.05)
        clock.advance(10.0)
        eng.evaluate()
        assert len(rec.dumps) == 1
        kinds = [e["kind"] for e in rec.events()]
        assert kinds.count("slo_alert") == 2  # firing + resolved


class TestGlobals:
    def test_record_flight_hits_global(self):
        rec = FlightRecorder(clock=ScriptedClock())
        set_flight_recorder(rec)
        record_flight("deep_layer", detail=1)
        assert get_flight_recorder() is rec
        assert rec.counts() == {"deep_layer": 1}

    def test_set_none_restores_fresh_default(self):
        rec = FlightRecorder(capacity=1, clock=ScriptedClock())
        set_flight_recorder(rec)
        fresh = set_flight_recorder(None)
        assert fresh is not rec and fresh.enabled
        assert get_flight_recorder() is fresh

    def test_disabled_global_drops_records(self):
        set_flight_recorder(FlightRecorder(capacity=0))
        record_flight("dropped")
        assert get_flight_recorder().events() == []

    @pytest.mark.skipif(
        not hasattr(signal, "SIGUSR2"), reason="no SIGUSR2"
    )
    def test_sigusr2_dumps_to_path(self, tmp_path):
        path = tmp_path / "sig.json"
        rec = set_flight_recorder(
            FlightRecorder(clock=ScriptedClock())
        )
        rec.record("before_signal")
        assert install_signal_handler(str(path))
        try:
            os.kill(os.getpid(), signal.SIGUSR2)
            doc = json.loads(path.read_text())
            assert doc["flight_recorder"]["reason"].startswith("signal:")
            assert [e["kind"] for e in doc["events"]] == [
                "before_signal"
            ]
        finally:
            signal.signal(signal.SIGUSR2, signal.SIG_DFL)
