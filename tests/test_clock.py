"""The shared injectable-clock vocabulary (repro.clock)."""

import time

import pytest

from repro.clock import MONOTONIC, PERF, ScriptedClock


class TestSharedClocks:
    def test_production_clocks_are_the_stdlib_timers(self):
        assert MONOTONIC is time.monotonic
        assert PERF is time.perf_counter

    def test_scripted_clock_is_a_callable_that_only_we_advance(self):
        clk = ScriptedClock()
        assert clk() == 0.0
        assert clk.advance(1.5) == 1.5
        assert clk() == 1.5
        clk.advance(0.0)
        assert clk() == 1.5

    def test_scripted_clock_custom_start(self):
        assert ScriptedClock(10.0)() == 10.0

    def test_scripted_clock_refuses_to_rewind(self):
        with pytest.raises(ValueError, match="rewind"):
            ScriptedClock().advance(-0.1)

    def test_one_scripted_clock_drives_every_subsystem(self):
        """The same clock instance is accepted by cache TTLs, breaker
        cooldowns, and the serving engine - the whole point of the
        shared module."""
        from repro.runtime.cache import FactorizationCache
        from repro.runtime.resilience import CircuitBreaker
        from repro.serving import CoalescingEngine

        clk = ScriptedClock()
        cache = FactorizationCache(ttl_seconds=5.0, clock=clk)
        breaker = CircuitBreaker("clk-test", clock=clk)
        engine = CoalescingEngine(clock=clk)
        assert cache is not None and breaker.allow()
        assert engine.pending == 0

    def test_loadgen_reexports_the_shared_scripted_clock(self):
        from repro.serving import loadgen

        assert loadgen.ScriptedClock is ScriptedClock
