"""Property tests for the size-binned execution planner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DEFAULT_BINS, BatchedMatrices
from repro.runtime import plan_batch
from tests.strategies import batch_shapes, make_batch, make_rhs, seeds

#: planner knobs swept by the property tests
bin_ladders = st.sampled_from([DEFAULT_BINS, (8, 32), (32,), None])


class TestPlanProperties:
    @given(batch_shapes, seeds, bin_ladders, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_gather_order_is_identity_permutation(
        self, shape, seed, bins, tight
    ):
        batch = make_batch(*shape, seed, dominant=True)
        plan = plan_batch(batch, bins=bins, tight=tight)
        order = plan.gather_order()
        np.testing.assert_array_equal(np.sort(order), np.arange(batch.nb))
        # stable within each bin: original order preserved
        for b in plan.bins:
            assert (np.diff(b.indices) > 0).all() or b.nb <= 1

    @given(batch_shapes, seeds, bin_ladders, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_bins_cover_all_blocks_within_tile(
        self, shape, seed, bins, tight
    ):
        batch = make_batch(*shape, seed, dominant=True)
        plan = plan_batch(batch, bins=bins, tight=tight)
        covered = np.zeros(batch.nb, dtype=bool)
        for b in plan.bins:
            assert not covered[b.indices].any()  # disjoint
            covered[b.indices] = True
            # every block fits the tile the bin executes at
            assert (batch.sizes[b.indices] <= b.tile).all()
            assert b.tile <= batch.tile
            assert b.batch.nb == b.nb
            assert b.batch.tile == b.tile
        assert covered.all()

    @given(batch_shapes, seeds, bin_ladders)
    @settings(max_examples=40, deadline=None)
    def test_tight_tile_is_largest_active_size(self, shape, seed, bins):
        batch = make_batch(*shape, seed, dominant=True)
        plan = plan_batch(batch, bins=bins, tight=True)
        for b in plan.bins:
            assert b.tile == int(batch.sizes[b.indices].max())

    @given(batch_shapes, seeds, bin_ladders, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_sub_batches_carry_the_source_blocks(
        self, shape, seed, bins, tight
    ):
        batch = make_batch(*shape, seed, dominant=False)
        plan = plan_batch(batch, bins=bins, tight=tight)
        for b in plan.bins:
            for j, i in enumerate(b.indices):
                np.testing.assert_array_equal(
                    b.batch.block(j), batch.block(int(i))
                )
            # the repacked corner keeps the identity padding convention
            pad = ~b.batch.active_mask()
            eye = np.broadcast_to(np.eye(b.tile), b.batch.data.shape)
            np.testing.assert_array_equal(b.batch.data[pad], eye[pad])

    @given(batch_shapes, seeds, bin_ladders, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_split_merge_roundtrip_is_identity(
        self, shape, seed, bins, tight
    ):
        batch = make_batch(*shape, seed, dominant=True)
        rhs = make_rhs(batch, seed + 1)
        plan = plan_batch(batch, bins=bins, tight=tight)
        merged = plan.merge_solutions(plan.split_rhs(rhs))
        np.testing.assert_array_equal(merged.data, rhs.data)
        np.testing.assert_array_equal(merged.sizes, rhs.sizes)

    @given(batch_shapes, seeds, bin_ladders, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_padded_flops_never_exceed_monolithic(
        self, shape, seed, bins, tight
    ):
        batch = make_batch(*shape, seed, dominant=True)
        plan = plan_batch(batch, bins=bins, tight=tight)
        assert plan.useful_flops_lu() <= plan.padded_flops_lu()
        assert plan.padded_flops_lu() <= plan.monolithic_flops_lu()
        # strict whenever any bin executes below the source tile
        if any(b.tile < batch.tile for b in plan.bins):
            assert plan.padded_flops_lu() < plan.monolithic_flops_lu()

    @given(batch_shapes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_scatter_per_block_inverts_binning(self, shape, seed):
        batch = make_batch(*shape, seed, dominant=True)
        plan = plan_batch(batch)
        out = plan.scatter_per_block(
            [batch.sizes[b.indices] for b in plan.bins]
        )
        np.testing.assert_array_equal(out, batch.sizes)


class TestPlanEdgeCases:
    def test_empty_batch_plans_no_bins(self):
        batch = BatchedMatrices.from_arrays(np.zeros((0, 8, 8)))
        plan = plan_batch(batch)
        assert plan.n_bins == 0
        assert plan.gather_order().size == 0
        assert plan.padded_flops_lu() == 0
        merged = plan.merge_solutions([])
        assert merged.nb == 0
        assert merged.tile == 8

    def test_single_block_single_bin(self):
        batch = BatchedMatrices.identity_padded([np.eye(5) * 2.0], tile=32)
        plan = plan_batch(batch)
        assert plan.n_bins == 1
        (b,) = plan.bins
        assert b.nominal_tile == 8  # smallest ladder bin fitting size 5
        assert b.tile == 5  # tight: the active size itself
        np.testing.assert_array_equal(b.indices, [0])

    def test_exact_size_bins_when_bins_is_none(self):
        batch = BatchedMatrices.identity_padded(
            [np.eye(3), np.eye(7), np.eye(3)], tile=16
        )
        plan = plan_batch(batch, bins=None)
        assert [b.tile for b in plan.bins] == [3, 7]
        assert [b.nominal_tile for b in plan.bins] == [3, 7]
        np.testing.assert_array_equal(plan.bins[0].indices, [0, 2])

    def test_nominal_tile_clamped_to_source_tile(self):
        # non-ladder source tile 20: the nominal 32 bin cannot exceed it
        batch = BatchedMatrices.identity_padded(
            [np.eye(18) + 1.0, np.eye(3)], tile=20
        )
        plan = plan_batch(batch, tight=False)
        tops = [b for b in plan.bins if b.nominal_tile == 32]
        assert len(tops) == 1
        assert tops[0].tile == 20

    def test_rejects_block_larger_than_biggest_bin(self):
        batch = BatchedMatrices.identity_padded([np.eye(16)])
        with pytest.raises(ValueError, match="exceeds the"):
            plan_batch(batch, bins=(4, 8))

    def test_split_rhs_rejects_wrong_nb(self):
        batch = make_batch(4, 8, seed=0, dominant=True)
        other = make_batch(5, 8, seed=1, dominant=True)
        plan = plan_batch(batch)
        with pytest.raises(ValueError, match="does not match plan"):
            plan.split_rhs(make_rhs(other, 2))

    def test_merge_rejects_wrong_bin_count(self):
        batch = make_batch(6, 16, seed=3, dominant=True)
        plan = plan_batch(batch)
        with pytest.raises(ValueError, match="per-bin solutions"):
            plan.merge_solutions([])

    def test_merge_rejects_wrong_bin_shape(self):
        batch = BatchedMatrices.identity_padded([np.eye(4), np.eye(4)])
        plan = plan_batch(batch)
        per_bin = plan.split_rhs(make_rhs(batch, 0))
        from repro.core import BatchedVectors

        bad = [BatchedVectors(np.zeros((1, 4)), np.array([4]))]
        with pytest.raises(ValueError, match="does not match bin"):
            plan.merge_solutions(bad)
