"""Differential tests of the runtime backends against the kernels.

The backend contract is behavioural: every backend must produce the
same solutions (binned/threads bitwise vs the monolithic numpy path,
scipy to LAPACK rounding) and the same degradation semantics as the raw
kernels, on random *and* adversarial batches.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.batched_lu import lu_factor
from repro.core.degradation import SingularBlockError
from repro.core.random_batches import random_batch, random_rhs
from repro.runtime import (
    BACKENDS,
    Backend,
    available_backends,
    get_backend,
    plan_batch,
    register_backend,
)
from repro.verify.adversarial import (
    graded_batch,
    mixed_size_batch,
    pivot_tie_batch,
)
from repro.verify.metrics import solution_distance
from tests.strategies import batch_shapes, make_batch, make_rhs, seeds

#: backends whose binned execution must be bitwise-identical to numpy
EXACT = ("binned", "threads")

ADVERSARIAL = {
    "mixed_size": lambda: mixed_size_batch(
        24, tile=32, seed=0, kind="diag_dominant"
    ),
    "pivot_ties": lambda: pivot_tie_batch(24, size=16, seed=0),
    # 4 decades keeps the LAPACK-vs-kernel comparison above the
    # rounding floor at the 1e-9 gate
    "graded": lambda: graded_batch(24, size=16, seed=0, decades=4.0),
}


def _solve_with(backend_name, batch, rhs, method="lu", on_singular=None):
    backend = get_backend(backend_name)
    plan = plan_batch(batch)
    fac = backend.factorize(plan, method=method, on_singular=on_singular)
    return fac, backend.solve(fac.state, plan, rhs)


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", sorted(set(available_backends())))
    @pytest.mark.parametrize("case", sorted(ADVERSARIAL))
    def test_adversarial_agreement_with_numpy(self, name, case):
        batch = ADVERSARIAL[case]()
        rhs = random_rhs(batch, seed=1)
        _, ref = _solve_with("numpy", batch, rhs)
        _, sol = _solve_with(name, batch, rhs)
        d = solution_distance(sol, ref)
        assert float(d.max()) <= 1e-9
        if name in EXACT:
            np.testing.assert_array_equal(sol.data, ref.data)

    @pytest.mark.parametrize("name", EXACT)
    @given(batch_shapes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_binned_is_bitwise_numpy_on_random_batches(
        self, name, shape, seed
    ):
        batch = make_batch(*shape, seed, dominant=False)
        rhs = make_rhs(batch, seed + 1)
        _, ref = _solve_with("numpy", batch, rhs)
        _, sol = _solve_with(name, batch, rhs)
        np.testing.assert_array_equal(sol.data, ref.data)

    @pytest.mark.parametrize("method", ["gh", "ght", "gje", "cholesky"])
    def test_all_methods_agree_with_numpy(self, method):
        kind = "spd" if method == "cholesky" else "diag_dominant"
        batch = random_batch(32, size_range=(1, 32), kind=kind, seed=5)
        rhs = random_rhs(batch, seed=6)
        _, ref = _solve_with("numpy", batch, rhs, method=method)
        _, sol = _solve_with("binned", batch, rhs, method=method)
        if method == "gje":
            # the inverse-matvec sums over the executed tile, so the
            # summation length differs between bins - rounding only
            assert float(solution_distance(sol, ref).max()) <= 1e-12
        else:
            np.testing.assert_array_equal(sol.data, ref.data)

    def test_info_matches_kernel_on_clean_batch(self):
        batch = random_batch(16, size_range=(1, 32), kind="diag_dominant",
                             seed=2)
        for name in available_backends():
            fac, _ = _solve_with(name, batch, random_rhs(batch, seed=3))
            assert fac.ok
            assert not fac.info.any()


class TestBackendDegradation:
    def _singular_batch(self):
        # every block has one exactly-zero row: all must be flagged
        return random_batch(12, size_range=(2, 32), kind="singular", seed=9)

    @pytest.mark.parametrize("name", EXACT)
    @pytest.mark.parametrize("policy", ["identity", "scalar", "shift"])
    def test_policies_match_legacy_kernel(self, name, policy):
        batch = self._singular_batch()
        legacy = lu_factor(batch, pivoting="implicit", on_singular=policy)
        fac, sol = _solve_with(
            name, batch, random_rhs(batch, seed=10), on_singular=policy
        )
        rec, ref = fac.degradation, legacy.degradation
        np.testing.assert_array_equal(rec.original_info, ref.original_info)
        np.testing.assert_array_equal(rec.action, ref.action)
        # shift magnitudes come from norm reductions whose summation
        # width follows the executed tile: equal to rounding only
        np.testing.assert_allclose(rec.shift, ref.shift, rtol=1e-12)
        assert rec.policy == policy
        np.testing.assert_array_equal(fac.info, legacy.info)

    def test_scipy_identity_policy_matches_legacy(self):
        if "scipy" not in available_backends():
            pytest.skip("scipy not installed")
        batch = self._singular_batch()
        legacy = lu_factor(batch, pivoting="implicit",
                           on_singular="identity")
        fac, _ = _solve_with(
            "scipy", batch, random_rhs(batch, seed=4),
            on_singular="identity",
        )
        np.testing.assert_array_equal(
            fac.degradation.action, legacy.degradation.action
        )
        assert not fac.info.any()

    @pytest.mark.parametrize("name", sorted(set(available_backends())))
    def test_raise_policy_reports_all_singular_blocks(self, name):
        batch = self._singular_batch()
        plan = plan_batch(batch)
        with pytest.raises(SingularBlockError) as exc:
            get_backend(name).factorize(plan, on_singular="raise")
        # the merged info names every offending block, not just the
        # first failing bin
        assert np.count_nonzero(exc.value.info) == batch.nb

    def test_raise_policy_on_clean_batch_records_all_clear(self):
        batch = random_batch(8, size=8, kind="diag_dominant", seed=1)
        fac, _ = _solve_with(
            "binned", batch, random_rhs(batch, seed=2),
            on_singular="raise",
        )
        assert fac.ok
        assert fac.degradation is not None
        assert not fac.degradation.action.any()

    def test_no_policy_leaves_info_raw(self):
        # no solve here: the kernels (rightly) refuse to solve against
        # a factorization that still carries singular blocks
        batch = self._singular_batch()
        fac = get_backend("binned").factorize(
            plan_batch(batch), on_singular=None
        )
        assert not fac.ok
        assert np.count_nonzero(fac.info) == batch.nb
        assert fac.degradation is None


class TestRegistry:
    def test_known_backends_registered(self):
        for name in ("numpy", "binned", "threads", "scipy"):
            assert name in BACKENDS

    def test_available_excludes_only_missing_deps(self):
        avail = available_backends()
        assert {"numpy", "binned", "threads"} <= set(avail)
        assert avail == sorted(avail)

    def test_get_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda")

    def test_register_requires_name(self):
        class Nameless(Backend):
            pass

        with pytest.raises(ValueError, match="needs a name"):
            register_backend(Nameless)

    def test_register_roundtrip(self):
        class Dummy(Backend):
            name = "dummy-test-backend"

        try:
            register_backend(Dummy)
            assert isinstance(get_backend("dummy-test-backend"), Dummy)
        finally:
            BACKENDS.pop("dummy-test-backend", None)

    def test_scipy_backend_is_lu_only(self):
        if "scipy" not in available_backends():
            pytest.skip("scipy not installed")
        batch = random_batch(4, size=4, kind="diag_dominant", seed=0)
        with pytest.raises(ValueError, match="method='lu' only"):
            get_backend("scipy").factorize(plan_batch(batch), method="gh")
