"""Runtime backend registry tests and random-batch bitwise properties.

The behavioural backend contract (round-trip equivalence, ``info``
merge order, degradation policies, cache fingerprints, invert
demotion) lives in the parameterized conformance harness
(``tests/runtime/test_backend_conformance.py``, ``-m conformance``) -
one suite over every registered backend instead of per-backend copies.
This module keeps what the harness does not cover: registry mechanics
and the Hypothesis property that bitwise-exact backends stay bitwise on
*random* (not just adversarial) batches.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.random_batches import random_batch
from repro.runtime import (
    BACKENDS,
    Backend,
    available_backends,
    get_backend,
    plan_batch,
    register_backend,
)
from tests.runtime.test_backend_conformance import CONTRACT, _solve_with
from tests.strategies import batch_shapes, make_batch, make_rhs, seeds

#: backends whose LU execution must be bitwise-identical to numpy,
#: straight from the conformance contract
EXACT = sorted(
    name
    for name, c in CONTRACT.items()
    if name != "numpy" and "lu" in c.exact_methods
)


class TestBitwiseProperty:
    @pytest.mark.parametrize("name", EXACT)
    @given(batch_shapes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_exact_backends_are_bitwise_numpy_on_random_batches(
        self, name, shape, seed
    ):
        batch = make_batch(*shape, seed, dominant=False)
        rhs = make_rhs(batch, seed + 1)
        _, ref = _solve_with("numpy", batch, rhs)
        _, sol = _solve_with(name, batch, rhs)
        np.testing.assert_array_equal(sol.data, ref.data)


class TestRegistry:
    def test_known_backends_registered(self):
        for name in ("numpy", "binned", "threads", "scipy",
                     "interleaved"):
            assert name in BACKENDS

    def test_available_excludes_only_missing_deps(self):
        avail = available_backends()
        assert {"numpy", "binned", "threads", "interleaved"} <= set(avail)
        assert avail == sorted(avail)

    def test_get_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda")

    def test_register_requires_name(self):
        class Nameless(Backend):
            pass

        with pytest.raises(ValueError, match="needs a name"):
            register_backend(Nameless)

    def test_register_roundtrip(self):
        class Dummy(Backend):
            name = "dummy-test-backend"

        try:
            register_backend(Dummy)
            assert isinstance(get_backend("dummy-test-backend"), Dummy)
        finally:
            BACKENDS.pop("dummy-test-backend", None)

    def test_scipy_backend_is_lu_only(self):
        if "scipy" not in available_backends():
            pytest.skip("scipy not installed")
        batch = random_batch(4, size=4, kind="diag_dominant", seed=0)
        with pytest.raises(ValueError, match="method='lu' only"):
            get_backend("scipy").factorize(plan_batch(batch), method="gh")

    def test_interleaved_backend_rejects_unsupported_methods(self):
        batch = random_batch(4, size=4, kind="diag_dominant", seed=0)
        plan = plan_batch(batch)
        backend = get_backend("interleaved")
        for method in ("gje", "cholesky"):
            with pytest.raises(ValueError, match="interleaved"):
                backend.factorize(plan, method=method)
