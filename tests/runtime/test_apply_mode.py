"""Runtime-level tests of ``apply_mode``: explicit-inverse GEMV apply
through the executor - equivalence vs the TRSV path, caching of the
inverse states (poison-aware), the per-bin autotuner, and the visible
fallback semantics for backends that cannot invert.
"""

import numpy as np
import pytest

from repro.core.random_batches import random_batch, random_rhs
from repro.runtime import APPLY_MODES, BatchRuntime
from repro.telemetry.metrics import get_metrics, set_metrics
from repro.verify.adversarial import mixed_size_batch, pivot_tie_batch

from tests.strategies import make_batch, make_rhs

SEED = 7

INVERTING_BACKENDS = ("numpy", "binned", "threads", "interleaved")


def _reference(batch, rhs, **kw):
    rt = BatchRuntime(backend="numpy", cache=False)
    return rt.factorize(batch, **kw).solve(rhs)


class TestApplyModeEquivalence:
    @pytest.mark.parametrize("backend", INVERTING_BACKENDS)
    @pytest.mark.parametrize("mode", ["inverse", "auto"])
    def test_matches_factor_path_on_mixed_batch(self, backend, mode):
        batch = make_batch(20, 16, SEED, dominant=True)
        rhs = make_rhs(batch, SEED + 1)
        ref = _reference(batch, rhs)
        rt = BatchRuntime(backend=backend, cache=False)
        fac = rt.factorize(batch, apply_mode=mode)
        sol = fac.solve(rhs)
        np.testing.assert_allclose(
            sol.data, ref.data, rtol=1e-9, atol=1e-12
        )
        assert fac.apply_mode == mode
        assert fac.effective_apply_mode in ("inverse", "factor", "mixed")

    @pytest.mark.parametrize(
        "make",
        [
            lambda: mixed_size_batch(16, tile=8, seed=SEED,
                                     kind="diag_dominant"),
            lambda: pivot_tie_batch(8, size=8, seed=SEED),
        ],
        ids=["mixed_size", "pivot_tie"],
    )
    def test_adversarial_batches(self, make):
        batch = make()
        rhs = random_rhs(batch, seed=SEED)
        ref = _reference(batch, rhs)
        rt = BatchRuntime(backend="binned", cache=False)
        sol = rt.factorize(batch, apply_mode="inverse").solve(rhs)
        np.testing.assert_allclose(
            sol.data, ref.data, rtol=1e-8, atol=1e-11
        )

    @pytest.mark.parametrize("policy", ["identity", "scalar", "shift"])
    def test_singular_blocks_under_each_policy(self, policy):
        batch = make_batch(10, 8, SEED, dominant=True)
        batch.data[3, : batch.sizes[3], : batch.sizes[3]] = 0.0
        rhs = make_rhs(batch, SEED + 2)
        ref = _reference(batch, rhs, on_singular=policy)
        rt = BatchRuntime(backend="binned", cache=False)
        fac = rt.factorize(
            batch, on_singular=policy, apply_mode="inverse"
        )
        assert fac.effective_apply_mode == "inverse"
        sol = fac.solve(rhs)
        np.testing.assert_allclose(
            sol.data, ref.data, rtol=1e-9, atol=1e-12
        )

    def test_unresolved_singular_blocks_fall_back_to_factor(self):
        batch = make_batch(6, 8, SEED, dominant=True)
        batch.data[1, : batch.sizes[1], : batch.sizes[1]] = 0.0
        rt = BatchRuntime(backend="binned", cache=False)
        fac = rt.factorize(batch, on_singular=None, apply_mode="inverse")
        assert not fac.ok
        assert fac.effective_apply_mode == "factor"
        events = rt.last_report.fallback_events
        assert any(
            e.get("stage") == "invert"
            and e.get("error") == "unresolved_singular_blocks"
            for e in events
        )

    def test_invalid_mode_rejected(self):
        rt = BatchRuntime(backend="numpy", cache=False)
        batch = make_batch(3, 4, SEED, dominant=True)
        with pytest.raises(ValueError, match="apply_mode"):
            rt.factorize(batch, apply_mode="bogus")
        assert "inverse" in APPLY_MODES


class TestNonInvertingBackends:
    def test_scipy_demotes_visibly(self):
        batch = make_batch(8, 8, SEED, dominant=True)
        rhs = make_rhs(batch, SEED + 3)
        rt = BatchRuntime(backend="scipy", cache=False)
        fac = rt.factorize(batch, apply_mode="inverse")
        assert fac.effective_apply_mode == "factor"
        events = rt.last_report.fallback_events
        assert any(
            e.get("stage") == "invert"
            and e.get("error") == "backend_no_invert"
            for e in events
        )
        ref = _reference(batch, rhs)
        np.testing.assert_allclose(
            fac.solve(rhs).data, ref.data, rtol=1e-9, atol=1e-12
        )


class TestInverseCache:
    def test_round_trip_preserves_inverse_mode(self):
        batch = make_batch(12, 8, SEED, dominant=True)
        rhs = make_rhs(batch, SEED + 4)
        rt = BatchRuntime(backend="binned")
        first = rt.factorize(batch, apply_mode="inverse")
        sol1 = first.solve(rhs)
        second = rt.factorize(batch, apply_mode="inverse")
        assert rt.last_report.cache_hit is True
        assert second.effective_apply_mode == "inverse"
        assert second.inverse is not None
        np.testing.assert_array_equal(second.solve(rhs).data, sol1.data)

    def test_mode_is_part_of_the_cache_key(self):
        batch = make_batch(5, 8, SEED, dominant=True)
        rt = BatchRuntime(backend="binned")
        rt.factorize(batch, apply_mode="factor")
        rt.factorize(batch, apply_mode="inverse")
        # different modes must not collide: the second call is a miss
        assert rt.last_report.cache_hit is False

    def test_poisoned_inverse_is_evicted_and_rebuilt(self):
        batch = make_batch(8, 8, SEED, dominant=True)
        rhs = make_rhs(batch, SEED + 5)
        rt = BatchRuntime(backend="binned", validate=True)
        fac = rt.factorize(batch, apply_mode="inverse")
        ref = fac.solve(rhs).data.copy()
        # corrupt one cached inverse in place (a decayed cache entry)
        unit = next(u for u in fac.inverse.units() if u is not None)
        unit.inverses.data[0, 0, 0] = np.nan
        fresh = rt.factorize(batch, apply_mode="inverse")
        assert rt.last_report.cache_poisoned
        assert fresh.effective_apply_mode == "inverse"
        sol = fresh.solve(rhs)
        assert np.isfinite(sol.data).all()
        np.testing.assert_allclose(sol.data, ref, rtol=1e-12)


class TestAutotune:
    def test_auto_records_per_bin_measurements(self):
        batch = make_batch(24, 16, SEED, dominant=True)
        rt = BatchRuntime(backend="binned", cache=False)
        fac = rt.factorize(batch, apply_mode="auto")
        tuning = rt.last_report.apply_tuning
        assert tuning is not None
        assert tuning["mode"] == fac.effective_apply_mode
        assert tuning["mode"] in ("inverse", "factor", "mixed")
        assert len(tuning["bins"]) >= 1
        for b in tuning["bins"]:
            assert b["mode"] in ("inverse", "factor")
            assert b["factor_seconds"] >= 0.0
            assert b["inverse_seconds"] >= 0.0
            assert b["speedup"] > 0.0
        assert tuning["break_even_applies"] > 0.0
        assert "tune" in rt.last_report.stage_seconds

    def test_auto_result_still_correct(self):
        batch = make_batch(24, 16, SEED + 1, dominant=True)
        rhs = make_rhs(batch, SEED + 6)
        ref = _reference(batch, rhs)
        rt = BatchRuntime(backend="binned", cache=False)
        sol = rt.factorize(batch, apply_mode="auto").solve(rhs)
        np.testing.assert_allclose(
            sol.data, ref.data, rtol=1e-9, atol=1e-12
        )


class _ScriptedClock:
    """Deterministic clock for tune_apply_mode: returns the scripted
    readings in order (the tuner reads start/stop per timed run)."""

    def __init__(self, readings):
        self.readings = list(readings)

    def __call__(self):
        return self.readings.pop(0)


class TestDeterministicAutotune:
    """Regression: the autotuner's verdict must be a pure function of
    the injected clock, not of wall time (the tests used to rely on
    real timings and could flip on a loaded machine)."""

    def _single_bin_state(self, backend="binned"):
        from repro.runtime import get_backend, plan_batch

        batch = make_batch(6, 8, SEED, dominant=True)
        be = get_backend(backend)
        plan = plan_batch(batch)
        fac = be.factorize(plan)
        inverse = be.invert(fac.state, plan)
        return fac, inverse

    def test_scripted_clock_forces_inverse_verdict(self):
        from repro.runtime.autotune import tune_apply_mode

        fac, inverse = self._single_bin_state()
        # one unit, repeats=1: factor run reads (0, 10), inverse (10, 11)
        clock = _ScriptedClock([0.0, 10.0, 10.0, 11.0])
        tuning = tune_apply_mode(
            fac.state, inverse, invert_seconds=5.0, repeats=1,
            clock=clock,
        )
        assert tuning.mode == "inverse"
        assert tuning.bins[0].factor_seconds == 10.0
        assert tuning.bins[0].inverse_seconds == 1.0
        assert tuning.bins[0].speedup == 10.0
        assert inverse.states[0] is not None
        # break-even: 5s setup / 9s-per-apply gain
        assert tuning.break_even_applies == pytest.approx(5.0 / 9.0)

    def test_scripted_clock_forces_factor_verdict(self):
        from repro.runtime.autotune import tune_apply_mode

        fac, inverse = self._single_bin_state()
        clock = _ScriptedClock([0.0, 1.0, 1.0, 11.0])
        tuning = tune_apply_mode(
            fac.state, inverse, invert_seconds=5.0, repeats=1,
            clock=clock,
        )
        assert tuning.mode == "factor"
        assert inverse.states[0] is None
        assert tuning.break_even_applies == float("inf")

    @pytest.mark.parametrize("backend", ["binned", "interleaved"])
    def test_verdict_is_reproducible_across_backends(self, backend):
        from repro.runtime.autotune import tune_apply_mode

        fac, inverse = self._single_bin_state(backend)
        # repeats=2: factor runs time 3.0 then 5.0 (best 3.0), inverse
        # runs 1.0 then 2.0 (best 1.0)
        ticks = [0.0, 3.0, 10.0, 15.0, 20.0, 21.0, 30.0, 32.0]
        tuning = tune_apply_mode(
            fac.state, inverse, repeats=2, clock=_ScriptedClock(ticks)
        )
        assert tuning.mode == "inverse"
        assert tuning.bins[0].factor_seconds == 3.0
        assert tuning.bins[0].inverse_seconds == 1.0


class TestResilientApply:
    def test_broken_inverse_falls_back_to_factor_path(self):
        batch = make_batch(10, 8, SEED, dominant=True)
        rhs = make_rhs(batch, SEED + 7)
        ref = _reference(batch, rhs)
        rt = BatchRuntime(backend="binned", fallback=("numpy",), cache=False)
        fac = rt.factorize(batch, apply_mode="inverse")
        assert fac.effective_apply_mode == "inverse"
        # sabotage the inverse states: NaN output on clean blocks is
        # what the corruption detector exists to catch
        for u in fac.inverse.units():
            if u is not None:
                u.inverses.data[...] = np.nan
        sol = fac.solve(rhs)
        np.testing.assert_allclose(
            sol.data, ref.data, rtol=1e-9, atol=1e-12
        )
        events = rt.last_report.fallback_events
        assert any(
            e.get("action") == "inverse_to_factor" for e in events
        )


class TestTelemetry:
    def test_apply_latency_histogram_labels_mode(self):
        original = get_metrics()
        set_metrics(None)
        try:
            batch = make_batch(6, 8, SEED, dominant=True)
            rhs = make_rhs(batch, SEED + 8)
            rt = BatchRuntime(backend="binned", cache=False)
            rt.factorize(batch, apply_mode="inverse").solve(rhs)
            rt.factorize(batch, apply_mode="factor").solve(rhs)
            snap = get_metrics().snapshot()
            assert snap.get("repro_apply_seconds") is not None
            text = get_metrics().prometheus_text()
            assert 'mode="inverse"' in text
            assert 'mode="factor"' in text
        finally:
            set_metrics(original)
