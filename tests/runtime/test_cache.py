"""Tests for the content-fingerprinted factorization cache."""

import numpy as np
import pytest

from repro.runtime import FactorizationCache, batch_fingerprint
from tests.strategies import make_batch


class TestBatchFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = make_batch(6, 16, seed=7, dominant=True)
        b = make_batch(6, 16, seed=7, dominant=True)
        assert a.data is not b.data
        assert batch_fingerprint(a) == batch_fingerprint(b)

    def test_data_change_changes_fingerprint(self):
        a = make_batch(6, 16, seed=7, dominant=True)
        b = a.copy()
        b.data[0, 0, 0] += 1e-14
        assert batch_fingerprint(a) != batch_fingerprint(b)

    def test_sizes_discriminate_equal_buffers(self):
        # identical padded buffers, different active sizes
        from repro.core import BatchedMatrices

        data = np.eye(4)[None].repeat(2, axis=0)
        a = BatchedMatrices(data.copy(), np.array([4, 4]))
        b = BatchedMatrices(data.copy(), np.array([4, 3]))
        assert batch_fingerprint(a) != batch_fingerprint(b)

    def test_dtype_discriminates(self):
        a = make_batch(3, 8, seed=1, dominant=True)
        assert batch_fingerprint(a) != batch_fingerprint(
            a.astype(np.float32)
        )

    def test_extra_discriminators(self):
        a = make_batch(3, 8, seed=1, dominant=True)
        assert batch_fingerprint(a, extra=("binned", "lu")) != (
            batch_fingerprint(a, extra=("numpy", "lu"))
        )
        assert batch_fingerprint(a, extra=("binned", "lu")) == (
            batch_fingerprint(a, extra=("binned", "lu"))
        )


class TestFactorizationCache:
    def test_miss_then_hit(self):
        c = FactorizationCache(max_entries=4)
        assert c.get("k") is None
        c.put("k", "handle")
        assert c.get("k") == "handle"
        s = c.stats
        assert (s.hits, s.misses, s.entries) == (1, 1, 1)
        assert s.hit_rate == 0.5
        assert "k" in c
        assert len(c) == 1

    def test_lru_eviction_order(self):
        c = FactorizationCache(max_entries=2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)  # evicts "a", the least recently used
        assert "a" not in c
        assert c.get("b") == 2
        assert c.stats.evictions == 1

    def test_lookup_refreshes_recency(self):
        c = FactorizationCache(max_entries=2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # "a" becomes most recent
        c.put("c", 3)  # so "b" is the one evicted
        assert "a" in c
        assert "b" not in c

    def test_put_refreshes_recency(self):
        c = FactorizationCache(max_entries=2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)  # refresh, not insert
        c.put("c", 3)
        assert c.get("a") == 10
        assert "b" not in c

    def test_invalidate_single_key(self):
        c = FactorizationCache()
        c.put("a", 1)
        c.put("b", 2)
        assert c.invalidate("a") == 1
        assert "a" not in c
        assert "b" in c
        assert c.stats.invalidations == 1

    def test_invalidate_unknown_key_is_noop(self):
        c = FactorizationCache()
        assert c.invalidate("ghost") == 0
        assert c.stats.invalidations == 0

    def test_invalidate_all(self):
        c = FactorizationCache()
        c.put("a", 1)
        c.put("b", 2)
        assert c.invalidate() == 2
        assert len(c) == 0
        assert c.stats.invalidations == 2

    def test_empty_cache_hit_rate_is_zero(self):
        assert FactorizationCache().stats.hit_rate == 0.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            FactorizationCache(max_entries=0)

    def test_stats_to_dict_roundtrip(self):
        c = FactorizationCache(max_entries=3)
        c.put("a", 1)
        c.get("a")
        d = c.stats.to_dict()
        assert d["hits"] == 1
        assert d["max_entries"] == 3
        assert d["hit_rate"] == 1.0


class TestCacheResilienceApi:
    def test_evict_poisoned_counts_separately(self):
        c = FactorizationCache()
        c.put("a", 1)
        assert c.evict_poisoned("a") is True
        assert c.evict_poisoned("a") is False  # already gone
        assert c.stats.poisoned == 1
        assert c.stats.invalidations == 0
        assert len(c) == 0

    def test_keys_lru_order_and_peek(self):
        c = FactorizationCache(max_entries=4)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # a becomes most recent
        assert c.keys() == ["b", "a"]
        hits = c.stats.hits
        assert c.peek("b") == 2
        assert c.peek("ghost") is None
        assert c.stats.hits == hits  # peek never touches counters
        assert c.keys() == ["b", "a"]  # nor recency

    def test_concurrent_hammering_stays_consistent(self):
        # satellite: the cache is shared by runtimes across threads;
        # hammer every operation concurrently and check the invariants
        import threading

        c = FactorizationCache(max_entries=8)
        keys = [f"k{i}" for i in range(16)]
        errors = []
        barrier = threading.Barrier(8)

        def worker(wid):
            try:
                barrier.wait()
                for round_ in range(200):
                    k = keys[(wid * 7 + round_) % len(keys)]
                    c.put(k, (wid, round_))
                    got = c.get(k)
                    assert got is None or isinstance(got, tuple)
                    if round_ % 13 == 0:
                        c.evict_poisoned(k)
                    if round_ % 31 == 0:
                        c.invalidate(k)
                    if round_ % 50 == 0:
                        c.keys()
                        c.peek(k)
            except Exception as e:  # pragma: no cover - failure path
                errors.append(e)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        s = c.stats
        assert len(c) <= 8
        assert s.entries == len(c)
        assert s.hits + s.misses == 8 * 200
        assert s.entries == len(c.keys())
