"""Tests for the content-fingerprinted factorization cache."""

import numpy as np
import pytest

from repro.runtime import FactorizationCache, batch_fingerprint
from tests.strategies import make_batch


class TestBatchFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = make_batch(6, 16, seed=7, dominant=True)
        b = make_batch(6, 16, seed=7, dominant=True)
        assert a.data is not b.data
        assert batch_fingerprint(a) == batch_fingerprint(b)

    def test_data_change_changes_fingerprint(self):
        a = make_batch(6, 16, seed=7, dominant=True)
        b = a.copy()
        b.data[0, 0, 0] += 1e-14
        assert batch_fingerprint(a) != batch_fingerprint(b)

    def test_sizes_discriminate_equal_buffers(self):
        # identical padded buffers, different active sizes
        from repro.core import BatchedMatrices

        data = np.eye(4)[None].repeat(2, axis=0)
        a = BatchedMatrices(data.copy(), np.array([4, 4]))
        b = BatchedMatrices(data.copy(), np.array([4, 3]))
        assert batch_fingerprint(a) != batch_fingerprint(b)

    def test_dtype_discriminates(self):
        a = make_batch(3, 8, seed=1, dominant=True)
        assert batch_fingerprint(a) != batch_fingerprint(
            a.astype(np.float32)
        )

    def test_extra_discriminators(self):
        a = make_batch(3, 8, seed=1, dominant=True)
        assert batch_fingerprint(a, extra=("binned", "lu")) != (
            batch_fingerprint(a, extra=("numpy", "lu"))
        )
        assert batch_fingerprint(a, extra=("binned", "lu")) == (
            batch_fingerprint(a, extra=("binned", "lu"))
        )


class TestFactorizationCache:
    def test_miss_then_hit(self):
        c = FactorizationCache(max_entries=4)
        assert c.get("k") is None
        c.put("k", "handle")
        assert c.get("k") == "handle"
        s = c.stats
        assert (s.hits, s.misses, s.entries) == (1, 1, 1)
        assert s.hit_rate == 0.5
        assert "k" in c
        assert len(c) == 1

    def test_lru_eviction_order(self):
        c = FactorizationCache(max_entries=2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)  # evicts "a", the least recently used
        assert "a" not in c
        assert c.get("b") == 2
        assert c.stats.evictions == 1

    def test_lookup_refreshes_recency(self):
        c = FactorizationCache(max_entries=2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # "a" becomes most recent
        c.put("c", 3)  # so "b" is the one evicted
        assert "a" in c
        assert "b" not in c

    def test_put_refreshes_recency(self):
        c = FactorizationCache(max_entries=2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)  # refresh, not insert
        c.put("c", 3)
        assert c.get("a") == 10
        assert "b" not in c

    def test_invalidate_single_key(self):
        c = FactorizationCache()
        c.put("a", 1)
        c.put("b", 2)
        assert c.invalidate("a") == 1
        assert "a" not in c
        assert "b" in c
        assert c.stats.invalidations == 1

    def test_invalidate_unknown_key_is_noop(self):
        c = FactorizationCache()
        assert c.invalidate("ghost") == 0
        assert c.stats.invalidations == 0

    def test_invalidate_all(self):
        c = FactorizationCache()
        c.put("a", 1)
        c.put("b", 2)
        assert c.invalidate() == 2
        assert len(c) == 0
        assert c.stats.invalidations == 2

    def test_empty_cache_hit_rate_is_zero(self):
        assert FactorizationCache().stats.hit_rate == 0.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            FactorizationCache(max_entries=0)

    def test_stats_to_dict_roundtrip(self):
        c = FactorizationCache(max_entries=3)
        c.put("a", 1)
        c.get("a")
        d = c.stats.to_dict()
        assert d["hits"] == 1
        assert d["max_entries"] == 3
        assert d["hit_rate"] == 1.0


class _Sized:
    def __init__(self, nbytes):
        self.nbytes = nbytes


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTtlEviction:
    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ValueError, match="ttl_seconds"):
            FactorizationCache(ttl_seconds=0.0)

    def test_expired_lookup_is_miss_plus_ttl_eviction(self):
        clk = Clock()
        c = FactorizationCache(ttl_seconds=10.0, clock=clk)
        c.put("k", 1)
        clk.now = 9.9
        assert c.get("k") == 1
        clk.now = 10.0  # age >= ttl: expired
        assert c.get("k") is None
        s = c.stats
        assert s.evictions == 1
        assert s.eviction_reasons["ttl"] == 1
        assert s.entries == 0

    def test_contains_and_peek_see_expiry(self):
        clk = Clock()
        c = FactorizationCache(ttl_seconds=5.0, clock=clk)
        c.put("k", 1)
        assert "k" in c
        clk.now = 6.0
        assert "k" not in c
        assert c.peek("k") is None
        # peek/contains do not evict; the entry is still resident
        assert c.stats.entries == 1

    def test_put_evicts_expired_eagerly(self):
        clk = Clock()
        c = FactorizationCache(ttl_seconds=5.0, clock=clk)
        c.put("old", 1)
        clk.now = 6.0
        c.put("new", 2)
        s = c.stats
        assert s.entries == 1
        assert s.eviction_reasons["ttl"] == 1

    def test_refresh_resets_age(self):
        clk = Clock()
        c = FactorizationCache(ttl_seconds=5.0, clock=clk)
        c.put("k", 1)
        clk.now = 4.0
        c.put("k", 2)  # refresh restamps
        clk.now = 8.0  # 4s since refresh, 8s since first insert
        assert c.get("k") == 2


class TestByteBudget:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="max_bytes"):
            FactorizationCache(max_bytes=0)

    def test_budget_evicts_lru_until_fit(self):
        c = FactorizationCache(max_bytes=100)
        c.put("a", _Sized(40))
        c.put("b", _Sized(40))
        c.put("c", _Sized(40))  # 120 > 100: evicts "a"
        assert "a" not in c
        assert "b" in c and "c" in c
        assert c.nbytes == 80
        assert c.stats.eviction_reasons["bytes"] == 1

    def test_oversized_value_stored_alone(self):
        c = FactorizationCache(max_bytes=100)
        c.put("a", _Sized(40))
        c.put("big", _Sized(500))  # bigger than the whole budget
        assert "big" in c  # the budget bounds the cache, not the work
        assert "a" not in c
        assert c.stats.entries == 1

    def test_nbytes_override_beats_value_attribute(self):
        c = FactorizationCache(max_bytes=100)
        c.put("a", _Sized(1000), nbytes=10)  # caller knows better
        assert "a" in c
        assert c.nbytes == 10

    def test_valueless_objects_count_zero_bytes(self):
        c = FactorizationCache(max_bytes=10)
        for i in range(5):
            c.put(f"k{i}", f"value-{i}")
        assert c.stats.entries == 5
        assert c.nbytes == 0

    def test_invalidate_and_poison_release_bytes(self):
        c = FactorizationCache(max_bytes=1000)
        c.put("a", _Sized(100))
        c.put("b", _Sized(200))
        c.invalidate("a")
        assert c.nbytes == 200
        c.evict_poisoned("b")
        assert c.nbytes == 0
        c.put("c", _Sized(50))
        c.invalidate()
        assert c.nbytes == 0

    def test_stats_expose_all_axes(self):
        clk = Clock()
        c = FactorizationCache(
            max_entries=8, ttl_seconds=30.0, max_bytes=256, clock=clk
        )
        c.put("a", _Sized(64))
        d = c.stats.to_dict()
        assert d["bytes"] == 64
        assert d["max_bytes"] == 256
        assert d["ttl_seconds"] == 30.0
        assert set(d["eviction_reasons"]) == {"capacity", "ttl", "bytes"}

    def test_evictions_total_sums_reasons(self):
        clk = Clock()
        c = FactorizationCache(
            max_entries=2, ttl_seconds=10.0, max_bytes=100, clock=clk
        )
        c.put("a", _Sized(60))
        c.put("b", _Sized(60))  # bytes eviction of "a"
        clk.now = 11.0
        assert c.get("b") is None  # ttl eviction
        c.put("c", _Sized(10))
        c.put("d", _Sized(10))
        c.put("e", _Sized(10))  # capacity eviction of "c"
        s = c.stats
        assert s.eviction_reasons == {"capacity": 1, "ttl": 1, "bytes": 1}
        assert s.evictions == 3


class TestCacheResilienceApi:
    def test_evict_poisoned_counts_separately(self):
        c = FactorizationCache()
        c.put("a", 1)
        assert c.evict_poisoned("a") is True
        assert c.evict_poisoned("a") is False  # already gone
        assert c.stats.poisoned == 1
        assert c.stats.invalidations == 0
        assert len(c) == 0

    def test_keys_lru_order_and_peek(self):
        c = FactorizationCache(max_entries=4)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # a becomes most recent
        assert c.keys() == ["b", "a"]
        hits = c.stats.hits
        assert c.peek("b") == 2
        assert c.peek("ghost") is None
        assert c.stats.hits == hits  # peek never touches counters
        assert c.keys() == ["b", "a"]  # nor recency

    def test_concurrent_hammering_stays_consistent(self):
        # satellite: the cache is shared by runtimes across threads;
        # hammer every operation concurrently and check the invariants
        import threading

        c = FactorizationCache(max_entries=8)
        keys = [f"k{i}" for i in range(16)]
        errors = []
        barrier = threading.Barrier(8)

        def worker(wid):
            try:
                barrier.wait()
                for round_ in range(200):
                    k = keys[(wid * 7 + round_) % len(keys)]
                    c.put(k, (wid, round_))
                    got = c.get(k)
                    assert got is None or isinstance(got, tuple)
                    if round_ % 13 == 0:
                        c.evict_poisoned(k)
                    if round_ % 31 == 0:
                        c.invalidate(k)
                    if round_ % 50 == 0:
                        c.keys()
                        c.peek(k)
            except Exception as e:  # pragma: no cover - failure path
                errors.append(e)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        s = c.stats
        assert len(c) <= 8
        assert s.entries == len(c)
        assert s.hits + s.misses == 8 * 200
        assert s.entries == len(c.keys())
