"""Tests for the resilient executor: fallback chain, circuit breakers,
bin-level quarantine, cache validation, and solve-side recovery."""

import numpy as np
import pytest

from repro.core import BatchedMatrices, SingularBlockError
from repro.runtime import (
    BatchRuntime,
    Backend,
    CircuitBreaker,
    RuntimeExecutionError,
    spot_check_factorization,
)
from repro.runtime.backends import get_backend
from tests.strategies import make_batch, make_rhs


class FlakyBackend(Backend):
    """Raises on the first ``fail_times`` factorize calls, then
    delegates to a real binned backend."""

    name = "flaky"

    def __init__(self, fail_times=10**9):
        self.inner = get_backend("binned")
        self.fail_times = fail_times
        self.calls = 0

    def factorize(self, plan, method="lu", on_singular=None):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise RuntimeError("injected flake")
        return self.inner.factorize(plan, method, on_singular)

    def solve(self, state, plan, rhs):
        return self.inner.solve(state, plan, rhs)

    def bin_stats(self, plan):
        return self.inner.bin_stats(plan)


def mixed_singular_batch(seed=0):
    """Blocks 1 and 3 exactly singular, sizes spread over two bins."""
    rng = np.random.default_rng(seed)
    blocks = []
    for i in range(6):
        m = 3 + i
        A = rng.standard_normal((m, m)) + m * np.eye(m)
        if i in (1, 3):
            A[m // 2, :] = 0.0
        blocks.append(A)
    return BatchedMatrices.identity_padded(blocks, tile=16)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        clock = [0.0]
        br = CircuitBreaker("x", failure_threshold=3,
                            cooldown_seconds=10.0, clock=lambda: clock[0])
        assert br.state == "closed"
        for _ in range(2):
            br.record_failure()
        assert br.state == "closed" and br.allow()
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()
        assert br.rejections == 1

    def test_half_open_probe_and_close(self):
        clock = [0.0]
        br = CircuitBreaker("x", failure_threshold=1,
                            cooldown_seconds=5.0, clock=lambda: clock[0])
        br.record_failure()
        assert br.state == "open"
        clock[0] = 5.0
        assert br.state == "half_open"
        assert br.allow()  # the probe
        br.record_success()
        assert br.state == "closed"

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock = [0.0]
        br = CircuitBreaker("x", failure_threshold=1,
                            cooldown_seconds=5.0, clock=lambda: clock[0])
        br.record_failure()
        clock[0] = 5.0
        assert br.allow()
        br.record_failure()  # probe failed
        assert br.state == "open"
        clock[0] = 9.0  # cooldown restarted at t=5
        assert br.state == "open"
        clock[0] = 10.0
        assert br.state == "half_open"

    def test_consecutive_reset_on_success(self):
        br = CircuitBreaker("x", failure_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="positive"):
            CircuitBreaker("x", failure_threshold=0)


class TestFallbackChain:
    def test_chain_falls_through_to_numpy(self):
        batch = make_batch(10, 12, seed=3, dominant=True)
        rhs = make_rhs(batch, seed=4)
        rt = BatchRuntime(backend=FlakyBackend(),
                          fallback=("numpy", "scipy"), quarantine=False)
        fac = rt.factorize(batch)
        rep = rt.last_report
        assert rep.backend_used == "numpy"
        assert any(e["backend"] == "flaky" for e in rep.fallback_events)
        assert all(b.fallback for b in rep.bins)
        ref = BatchRuntime(backend="numpy", cache=False).factorize(batch)
        np.testing.assert_allclose(
            fac.solve(rhs).data, ref.solve(rhs).data
        )

    def test_all_avenues_exhausted_raises(self):
        batch = make_batch(4, 8, seed=0, dominant=True)
        rt = BatchRuntime(backend=FlakyBackend(), fallback=(),
                          quarantine=False, validate=True)
        with pytest.raises(RuntimeExecutionError, match="no backend"):
            rt.factorize(batch)

    def test_scipy_skipped_for_non_lu(self):
        batch = make_batch(4, 8, seed=0, dominant=True)
        rt = BatchRuntime(backend=FlakyBackend(),
                          fallback=("scipy", "numpy"), quarantine=False)
        rt.factorize(batch, method="gh")
        events = rt.last_report.fallback_events
        assert any(
            e["backend"] == "scipy" and e["error"] == "method_unsupported"
            for e in events
        )
        assert rt.last_report.backend_used == "numpy"

    def test_breaker_skips_primary_after_trips(self):
        batch = make_batch(4, 8, seed=0, dominant=True)
        flaky = FlakyBackend()
        rt = BatchRuntime(backend=flaky, fallback=("numpy",),
                          quarantine=False, breaker_threshold=1)
        rt.factorize(batch)
        calls_after_first = flaky.calls
        rt.factorize(batch, use_cache=False)
        assert flaky.calls == calls_after_first  # breaker open: skipped
        assert any(
            e.get("error") == "circuit_open"
            for e in rt.last_report.fallback_events
        )

    def test_non_resilient_runtime_unchanged(self):
        batch = make_batch(6, 10, seed=1, dominant=True)
        rt = BatchRuntime(backend="binned")
        assert not rt.resilient
        fac = rt.factorize(batch)
        rep = rt.last_report
        assert rep.backend_used is None
        assert rep.fallback_events == []
        assert rep.breakers is None
        assert not any(b.fallback for b in rep.bins)
        assert fac.ok


class TestQuarantine:
    def test_quarantine_preserves_solutions(self):
        batch = make_batch(12, 14, seed=5, dominant=True)
        rhs = make_rhs(batch, seed=6)
        rt = BatchRuntime(backend=FlakyBackend(), fallback=("numpy",))
        fac = rt.factorize(batch)
        rep = rt.last_report
        assert rep.backend_used == "flaky+quarantine"
        assert rep.quarantined_bins  # every bin had to move
        for i, b in enumerate(rep.bins):
            assert b.quarantined == (i in rep.quarantined_bins)
            assert b.fallback == b.quarantined
        ref = BatchRuntime(backend="numpy", cache=False).factorize(batch)
        np.testing.assert_allclose(
            fac.solve(rhs).data, ref.solve(rhs).data
        )

    def test_partial_flake_keeps_healthy_bins_on_primary(self):
        # fail only the first per-bin retry: the whole-batch call fails,
        # then bin 0 fails once more and quarantines, later bins pass
        batch = make_batch(12, 14, seed=5, dominant=True)
        rt = BatchRuntime(backend=FlakyBackend(fail_times=2),
                          fallback=("numpy",), breaker_threshold=10)
        fac = rt.factorize(batch)
        rep = rt.last_report
        assert rep.quarantined_bins == [0]
        assert fac.ok
        assert [b.quarantined for b in rep.bins].count(True) == 1

    def test_info_bit_for_bit_through_quarantine(self):
        # satellite: on_singular="raise" must propagate through the
        # quarantine path with the merged source-ordered status
        # identical to the single-backend behaviour
        batch = mixed_singular_batch()
        with pytest.raises(SingularBlockError) as direct:
            get_backend("binned").factorize(
                batch_plan(batch), "lu", "raise"
            )
        rt = BatchRuntime(backend=FlakyBackend(), fallback=("numpy",))
        with pytest.raises(SingularBlockError, match="on_singular") as q:
            rt.factorize(batch, on_singular="raise")
        np.testing.assert_array_equal(q.value.info, direct.value.info)

    def test_raise_bit_for_bit_through_chain(self):
        batch = mixed_singular_batch()
        with pytest.raises(SingularBlockError) as direct:
            get_backend("binned").factorize(
                batch_plan(batch), "lu", "raise"
            )
        rt = BatchRuntime(backend=FlakyBackend(), fallback=("numpy",),
                          quarantine=False)
        with pytest.raises(SingularBlockError) as chain:
            rt.factorize(batch, on_singular="raise")
        np.testing.assert_array_equal(
            chain.value.info, direct.value.info
        )

    def test_degradation_bit_for_bit_through_quarantine(self):
        batch = mixed_singular_batch()
        direct = BatchRuntime(backend="binned", cache=False).factorize(
            batch, on_singular="identity"
        )
        rt = BatchRuntime(backend=FlakyBackend(), fallback=("numpy",))
        fac = rt.factorize(batch, on_singular="identity")
        assert rt.last_report.backend_used == "flaky+quarantine"
        np.testing.assert_array_equal(fac.info, direct.info)
        np.testing.assert_array_equal(
            fac.degradation.action, direct.degradation.action
        )
        np.testing.assert_array_equal(
            fac.degradation.original_info, direct.degradation.original_info
        )
        rhs = make_rhs(batch, seed=9)
        np.testing.assert_allclose(
            fac.solve(rhs).data, direct.solve(rhs).data
        )


def batch_plan(batch):
    from repro.runtime import plan_batch

    return plan_batch(batch)


class TestSpotCheck:
    def test_clean_factors_pass(self):
        batch = make_batch(6, 10, seed=2, dominant=True)
        backend = get_backend("binned")
        plan = batch_plan(batch)
        res = backend.factorize(plan, "lu", None)
        bad = spot_check_factorization(backend, res.state, plan, res.info)
        assert not bad.any()

    def test_nan_corruption_flagged(self):
        batch = make_batch(6, 10, seed=2, dominant=True)
        backend = get_backend("binned")
        plan = batch_plan(batch)
        res = backend.factorize(plan, "lu", None)
        method, facs = res.state
        facs[0].factors.data[0, 0, 0] = np.nan
        bad = spot_check_factorization(backend, res.state, plan, res.info)
        assert bad.any()

    def test_nonzero_info_blocks_exempt(self):
        batch = mixed_singular_batch()
        backend = get_backend("binned")
        plan = batch_plan(batch)
        res = backend.factorize(plan, "lu", None)
        bad = spot_check_factorization(backend, res.state, plan, res.info)
        assert not bad.any()  # semantic refusal must not read as damage

    def test_singular_batch_survives_resilient_path(self):
        # unresolved singular blocks (policy None) must pass through the
        # validating executor untouched, not get quarantined as corrupt
        batch = mixed_singular_batch()
        rt = BatchRuntime(backend="binned", fallback=("numpy",))
        fac = rt.factorize(batch)
        direct = get_backend("binned").factorize(
            batch_plan(batch), "lu", None
        )
        np.testing.assert_array_equal(fac.info, direct.info)
        assert rt.last_report.fallback_events == []
        assert rt.last_report.quarantined_bins == []


class TestCacheResilience:
    def test_poisoned_entry_evicted_and_refactorized(self):
        from repro.chaos import poison_cache

        batch = make_batch(8, 12, seed=11, dominant=True)
        rhs = make_rhs(batch, seed=12)
        rt = BatchRuntime(backend="binned", validate=True,
                          quarantine=False)
        rt.factorize(batch)
        assert poison_cache(rt.cache, seed=0) == 1
        fac = rt.factorize(batch)
        rep = rt.last_report
        assert rep.cache_poisoned
        assert rep.cache_hit is False
        assert rt.cache.stats.poisoned == 1
        ref = BatchRuntime(backend="numpy", cache=False).factorize(batch)
        np.testing.assert_allclose(
            fac.solve(rhs).data, ref.solve(rhs).data
        )

    def test_clean_hit_served_under_validation(self):
        batch = make_batch(8, 12, seed=11, dominant=True)
        rt = BatchRuntime(backend="binned", validate=True,
                          quarantine=False)
        first = rt.factorize(batch)
        second = rt.factorize(batch)
        assert second is first
        assert rt.last_report.cache_hit is True
        assert not rt.last_report.cache_poisoned

    def test_cache_degraded_knob(self):
        batch = mixed_singular_batch()
        keep = BatchRuntime(backend="binned")  # default: cache_degraded
        assert keep.factorize(batch).ok is False
        keep.factorize(batch)
        assert keep.last_report.cache_hit is True
        drop = BatchRuntime(backend="binned", cache_degraded=False)
        assert drop.factorize(batch).ok is False
        drop.factorize(batch)
        assert drop.last_report.cache_hit is False

    def test_fallback_produced_handles_not_cached(self):
        batch = make_batch(6, 10, seed=3, dominant=True)
        rt = BatchRuntime(backend=FlakyBackend(), fallback=("numpy",),
                          quarantine=False)
        rt.factorize(batch)
        assert len(rt.cache) == 0  # tainted: never cached


class TestSolveResilience:
    def test_solves_property_and_report(self):
        batch = make_batch(6, 10, seed=3, dominant=True)
        rhs = make_rhs(batch, seed=4)
        rt = BatchRuntime(backend="binned")
        fac = rt.factorize(batch)
        assert fac.solves == 0
        fac.solve(rhs)
        fac.solve(rhs)
        assert fac.solves == 2
        d = fac.report.to_dict()
        assert d["solves"] == 2
        assert d["solve_seconds"] > 0.0

    def test_corrupted_solve_falls_back_to_reference(self):
        batch = make_batch(6, 10, seed=3, dominant=True)
        rhs = make_rhs(batch, seed=4)
        rt = BatchRuntime(backend="binned", validate=True,
                          quarantine=False)
        fac = rt.factorize(batch)
        ref = BatchRuntime(backend="numpy", cache=False).factorize(batch)
        expected = ref.solve(rhs).data
        # corrupt the stored factors after the (validated) creation
        method, facs = fac.result.state
        facs[0].factors.data[:, :, :] = np.nan
        out = fac.solve(rhs)
        np.testing.assert_allclose(out.data, expected)
        assert fac.report.solve_fallbacks == 1
        assert any(
            e["stage"] == "solve" for e in fac.report.fallback_events
        )

    def test_geometry_mismatch_still_raises(self):
        batch = make_batch(6, 10, seed=3, dominant=True)
        other = make_rhs(make_batch(5, 10, seed=3, dominant=True), seed=0)
        rt = BatchRuntime(backend="binned", validate=True)
        fac = rt.factorize(batch)
        with pytest.raises(ValueError, match="geometry"):
            fac.solve(other)
