"""StageTimer edge cases and its equivalence with the span tracer.

The timer is the adapter between the runtime's historical
``stage_seconds`` dict and the telemetry spans; these tests pin the
adapter contract: accumulation semantics are unchanged (re-entrancy,
exceptions), and when a tracer is installed every stage shows up as a
``<prefix>.<name>`` span whose duration matches the accumulated time.
"""

import pytest

from repro.runtime.stats import StageTimer
from repro.telemetry import get_metrics, set_tracer, tracing


@pytest.fixture(autouse=True)
def _clean_telemetry():
    set_tracer(None)
    get_metrics().reset()
    yield
    set_tracer(None)
    get_metrics().reset()


class TestAccumulation:
    def test_reentrant_stages_accumulate(self):
        seconds = {}
        timer = StageTimer(seconds)
        with timer.stage("solve"):
            pass
        first = seconds["solve"]
        with timer.stage("solve"):
            pass
        assert seconds["solve"] > first  # added, not overwritten
        assert list(seconds) == ["solve"]

    def test_exception_inside_stage_still_records(self):
        seconds = {}
        timer = StageTimer(seconds)
        with pytest.raises(RuntimeError):
            with timer.stage("factor"):
                raise RuntimeError("boom")
        assert seconds["factor"] > 0.0

    def test_independent_stage_names(self):
        seconds = {}
        timer = StageTimer(seconds)
        with timer.stage("plan"):
            pass
        with timer.stage("factor"):
            pass
        assert set(seconds) == {"plan", "factor"}


class TestSpanEquivalence:
    def test_stage_opens_prefixed_span(self):
        seconds = {}
        with tracing() as tr:
            with StageTimer(seconds).stage("factor"):
                pass
        (span,) = tr.spans()
        assert span.name == "runtime.factor"
        assert span.cat == "runtime"
        assert span.attrs.get("error") is False

    def test_custom_prefix(self):
        seconds = {}
        with tracing() as tr:
            with StageTimer(seconds, prefix="custom").stage("x"):
                pass
        assert tr.spans()[0].name == "custom.x"

    def test_span_duration_close_to_accumulated_seconds(self):
        seconds = {}
        with tracing() as tr:
            with StageTimer(seconds).stage("factor"):
                sum(range(10000))
        (span,) = tr.spans()
        # the span brackets the dict timing; they agree to within the
        # overhead of the two extra clock reads
        assert span.duration >= 0.0
        assert abs(span.duration - seconds["factor"]) < 0.01

    def test_exception_marks_span_errored(self):
        seconds = {}
        with tracing() as tr:
            with pytest.raises(ValueError):
                with StageTimer(seconds).stage("factor"):
                    raise ValueError("x")
        (span,) = tr.spans()
        assert span.attrs["error"] is True
        assert seconds["factor"] > 0.0

    def test_disabled_tracer_records_no_spans_same_seconds(self):
        plain = {}
        with StageTimer(plain).stage("factor"):
            pass
        with tracing() as tr:
            traced = {}
            with StageTimer(traced).stage("factor"):
                pass
        assert set(plain) == set(traced)
        assert len(tr.spans()) == 1  # only the traced run produced one


class TestLatencyHistogram:
    def test_stage_feeds_histogram_always(self):
        # metrics are always-on: no tracer needed
        seconds = {}
        with StageTimer(seconds).stage("factor"):
            pass
        snap = get_metrics().histogram("repro_stage_seconds").snapshot()
        assert snap["stage=factor"]["count"] == 1
