"""Tests for the BatchRuntime executor and its instrumentation."""

import json

import numpy as np
import pytest

from repro.core import BatchedMatrices
from repro.core.random_batches import random_batch, random_rhs
from repro.runtime import BatchRuntime, FactorizationCache
from repro.verify.adversarial import mixed_size_batch


def _mixed_batch(seed=0):
    return random_batch(24, size_range=(1, 32), kind="diag_dominant",
                        seed=seed)


class TestFactorizeAndSolve:
    def test_handle_solves_and_times_stages(self):
        rt = BatchRuntime()
        batch = _mixed_batch()
        fac = rt.factorize(batch)
        rep = rt.last_report
        assert rep is fac.report
        assert {"plan", "factor", "fingerprint"} <= set(rep.stage_seconds)
        assert "solve" not in rep.stage_seconds
        fac.solve(random_rhs(batch, seed=1))
        fac.solve(random_rhs(batch, seed=2))
        assert rep.stage_seconds["solve"] > 0.0
        assert rep.total_seconds > 0.0

    def test_source_batch_never_mutated(self):
        batch = _mixed_batch()
        before = batch.data.copy()
        fac = BatchRuntime().factorize(batch)
        fac.solve(random_rhs(batch, seed=1))
        np.testing.assert_array_equal(batch.data, before)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            BatchRuntime().factorize(_mixed_batch(), method="qr")

    def test_rejects_mismatched_rhs(self):
        rt = BatchRuntime()
        fac = rt.factorize(_mixed_batch(seed=0))
        wrong = random_rhs(_mixed_batch(seed=0), seed=1)
        bad = type(wrong)(wrong.data[:-1], wrong.sizes[:-1])
        with pytest.raises(ValueError, match="does not match"):
            fac.solve(bad)

    def test_runtime_solve_alias(self):
        rt = BatchRuntime()
        batch = _mixed_batch()
        fac = rt.factorize(batch)
        rhs = random_rhs(batch, seed=3)
        np.testing.assert_array_equal(
            rt.solve(fac, rhs).data, fac.solve(rhs).data
        )


class TestPaddingAccounting:
    def test_binned_strictly_beats_monolithic_on_mixed_batch(self):
        # the tentpole acceptance check: a tile-32 batch containing
        # blocks below 32 must be charged strictly fewer padded flops
        # by the binned dispatch than by the monolithic tile-32 loop
        batch = mixed_size_batch(24, tile=32, seed=0,
                                 kind="diag_dominant")
        assert int(batch.sizes.min()) < 32
        rt = BatchRuntime(backend="binned")
        rt.factorize(batch)
        rep = rt.last_report
        assert rep.padded_flops < rep.monolithic_padded_flops
        assert rep.flops_saved > 0
        # per-bin integer truncation: within nb of the whole-batch count
        assert abs(rep.useful_flops - batch.flops_lu()) <= batch.nb
        assert rep.padded_flops >= rep.useful_flops

    def test_uniform_full_tile_batch_saves_nothing(self):
        batch = random_batch(8, size=32, kind="diag_dominant", seed=0)
        rt = BatchRuntime()
        rt.factorize(batch)
        rep = rt.last_report
        assert rep.padded_flops == rep.monolithic_padded_flops
        assert rep.flops_saved == 0

    def test_numpy_backend_reports_single_monolithic_bin(self):
        rt = BatchRuntime(backend="numpy")
        rt.factorize(_mixed_batch())
        rep = rt.last_report
        assert len(rep.bins) == 1
        assert rep.bins[0].tile == rep.source_tile
        assert rep.padded_flops == rep.monolithic_padded_flops

    def test_scipy_backend_reports_zero_waste(self):
        from repro.runtime import available_backends

        if "scipy" not in available_backends():
            pytest.skip("scipy not installed")
        rt = BatchRuntime(backend="scipy")
        rt.factorize(_mixed_batch())
        assert rt.last_report.padding_waste == 0

    def test_report_serializes_to_json(self):
        rt = BatchRuntime()
        batch = _mixed_batch()
        rt.factorize(batch).solve(random_rhs(batch, seed=1))
        d = rt.last_report.to_dict()
        payload = json.loads(json.dumps(d))
        assert payload["backend"] == "binned"
        assert payload["nb"] == batch.nb
        assert len(payload["bins"]) == len(rt.last_report.bins)

    def test_summary_mentions_backend_and_bins(self):
        rt = BatchRuntime()
        rt.factorize(_mixed_batch())
        text = rt.last_report.summary()
        assert "runtime[binned/lu]" in text
        assert "bin tile" in text
        assert "monolithic" in text


class TestCachingExecutor:
    def test_repeated_setup_hits_cache(self):
        rt = BatchRuntime()
        batch = _mixed_batch()
        first = rt.factorize(batch)
        assert rt.last_report.cache_hit is False
        again = rt.factorize(batch.copy())  # equal content, new buffer
        assert again is first
        assert rt.last_report.cache_hit is True
        # the hit's report still carries the bin accounting
        assert rt.last_report.bins
        s = rt.cache_stats
        assert (s.hits, s.misses) == (1, 1)

    def test_data_change_misses(self):
        rt = BatchRuntime()
        batch = _mixed_batch()
        rt.factorize(batch)
        bumped = batch.copy()
        bumped.data[0, 0, 0] *= 1.0 + 1e-12
        rt.factorize(bumped)
        assert rt.last_report.cache_hit is False
        assert rt.cache_stats.misses == 2

    def test_method_and_policy_discriminate(self):
        rt = BatchRuntime()
        batch = _mixed_batch()
        rt.factorize(batch, method="lu")
        rt.factorize(batch, method="gh")
        rt.factorize(batch, method="lu", on_singular="identity")
        assert rt.cache_stats.hits == 0
        assert rt.cache_stats.entries == 3

    def test_use_cache_false_bypasses_lookup(self):
        rt = BatchRuntime()
        batch = _mixed_batch()
        rt.factorize(batch, use_cache=False)
        rt.factorize(batch, use_cache=False)
        s = rt.cache_stats
        assert (s.hits, s.misses, s.entries) == (0, 0, 0)
        assert rt.last_report.cache_hit is None

    def test_invalidate_forces_refactorization(self):
        rt = BatchRuntime()
        batch = _mixed_batch()
        rt.factorize(batch)
        assert rt.invalidate() == 1
        rt.factorize(batch)
        assert rt.last_report.cache_hit is False

    def test_cache_disabled(self):
        rt = BatchRuntime(cache=False)
        batch = _mixed_batch()
        rt.factorize(batch)
        assert rt.cache_stats is None
        assert rt.invalidate() == 0
        assert rt.last_report.cache_hit is None

    def test_shared_cache_across_runtimes(self):
        shared = FactorizationCache(max_entries=8)
        a = BatchRuntime(cache=shared)
        b = BatchRuntime(cache=shared)
        batch = _mixed_batch()
        a.factorize(batch)
        b.factorize(batch)
        assert b.last_report.cache_hit is True
        assert shared.stats.hits == 1

    def test_bounded_cache_evicts(self):
        rt = BatchRuntime(cache_entries=2)
        for seed in range(3):
            rt.factorize(_mixed_batch(seed=seed))
        s = rt.cache_stats
        assert s.entries == 2
        assert s.evictions == 1


class TestRuntimeConfiguration:
    def test_exact_bins_mode(self):
        rt = BatchRuntime(bins=None)
        batch = BatchedMatrices.identity_padded(
            [np.eye(3) * 2, np.eye(9) * 2, np.eye(3) * 2], tile=16
        )
        rt.factorize(batch)
        assert sorted(b.tile for b in rt.last_report.bins) == [3, 9]

    def test_non_tight_bins_run_at_nominal_ceiling(self):
        batch = BatchedMatrices.identity_padded(
            [np.eye(3) * 2, np.eye(9) * 2], tile=16
        )
        rt = BatchRuntime(tight=False)
        rt.factorize(batch)
        assert sorted(b.tile for b in rt.last_report.bins) == [4, 16]
        tight = BatchRuntime(tight=True)
        tight.factorize(batch)
        assert sorted(b.tile for b in tight.last_report.bins) == [3, 9]

    def test_backend_instance_accepted(self):
        from repro.runtime import get_backend

        rt = BatchRuntime(backend=get_backend("numpy"))
        assert rt.backend.name == "numpy"
