"""Backend-conformance harness: one contract, every registered backend.

Every backend in the registry must satisfy the same behavioural
contract - factorize/solve round-trip against the ``numpy`` reference,
source-ordered ``info`` merging, singular-block degradation identical
to the raw kernels, stable cache fingerprints, and a visible
``supports_invert`` demotion - so backend-specific tests are not
written per backend: they are rows in :data:`CONTRACT` and the whole
suite is parameterized over the registry.

The coverage guard (:class:`TestContractCoverage`) closes the loop:
registering a new backend without declaring its contract row fails the
suite, which is how this harness gates future backends (the
``interleaved`` backend landed through it).

Run standalone with ``pytest -m conformance``.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.batched_lu import lu_factor
from repro.core.degradation import SingularBlockError
from repro.core.random_batches import random_batch, random_rhs
from repro.runtime import BatchRuntime, available_backends, get_backend, plan_batch
from repro.runtime.backends import BACKENDS, METHODS
from repro.verify.adversarial import (
    graded_batch,
    mixed_size_batch,
    pivot_tie_batch,
)
from repro.verify.metrics import solution_distance

from tests.strategies import make_batch, make_rhs

pytestmark = pytest.mark.conformance

SEED = 13


@dataclass(frozen=True)
class BackendContract:
    """What a backend promises, as checked by this harness.

    ``methods``: factorization methods it must execute (everything else
    must raise ``ValueError``).  ``exact_methods``: methods whose
    solutions are bitwise-identical to the ``numpy`` reference;
    remaining methods must agree within ``tol`` (componentwise relative
    solution distance).  ``invert``: whether ``apply_mode="inverse"``
    runs natively (False demotes to the factor path with a recorded
    ``backend_no_invert`` event).
    """

    methods: tuple
    exact_methods: tuple
    tol: float
    invert: bool


#: the conformance contract, one row per registered backend.  A new
#: backend MUST add its row here - TestContractCoverage fails otherwise.
CONTRACT = {
    "numpy": BackendContract(
        methods=METHODS, exact_methods=METHODS, tol=0.0, invert=True
    ),
    "binned": BackendContract(
        methods=METHODS,
        # gje applies an inverse-matvec whose summation length follows
        # the executed tile, so it differs from the monolithic path by
        # rounding; every factor/solve method is bitwise.
        exact_methods=("lu", "gh", "ght", "cholesky"),
        tol=1e-12,
        invert=True,
    ),
    "threads": BackendContract(
        methods=METHODS,
        exact_methods=("lu", "gh", "ght", "cholesky"),
        tol=1e-12,
        invert=True,
    ),
    "scipy": BackendContract(
        methods=("lu",), exact_methods=(), tol=1e-9, invert=False
    ),
    "interleaved": BackendContract(
        methods=("lu", "gh", "ght"),
        # LU/TRSV are elementwise in both layouts -> bitwise; the GH
        # lazy-update/solve einsums accumulate in SoA order -> rounding
        exact_methods=("lu",),
        tol=1e-12,
        invert=True,
    ),
}

ADVERSARIAL = {
    "mixed_size": lambda: mixed_size_batch(
        24, tile=32, seed=0, kind="diag_dominant"
    ),
    "pivot_ties": lambda: pivot_tie_batch(24, size=16, seed=0),
    # 4 decades keeps the LAPACK-vs-kernel comparison above the
    # rounding floor at the 1e-9 gate
    "graded": lambda: graded_batch(24, size=16, seed=0, decades=4.0),
}

ALL_BACKENDS = sorted(BACKENDS)
AVAILABLE = sorted(available_backends())


def _contract(name: str) -> BackendContract:
    return CONTRACT[name]


def _skip_unavailable(name: str) -> None:
    if name not in AVAILABLE:
        pytest.skip(f"backend {name!r} unavailable in this environment")


def _solve_with(name, batch, rhs, method="lu", on_singular=None):
    backend = get_backend(name)
    plan = plan_batch(batch)
    fac = backend.factorize(plan, method=method, on_singular=on_singular)
    return fac, backend.solve(fac.state, plan, rhs)


def _assert_agreement(name, method, sol, ref):
    c = _contract(name)
    if method in c.exact_methods:
        np.testing.assert_array_equal(sol.data, ref.data)
    else:
        assert float(solution_distance(sol, ref).max()) <= c.tol


class TestContractCoverage:
    def test_every_registered_backend_has_a_contract(self):
        missing = set(BACKENDS) - set(CONTRACT)
        assert not missing, (
            f"backend(s) {sorted(missing)} registered without a "
            "conformance contract: add a CONTRACT row in "
            "tests/runtime/test_backend_conformance.py so the shared "
            "harness gates them"
        )

    def test_no_stale_contract_rows(self):
        stale = set(CONTRACT) - set(BACKENDS)
        assert not stale, f"contract rows for unregistered: {sorted(stale)}"

    def test_contract_matches_advertised_capabilities(self):
        for name, c in CONTRACT.items():
            cls = BACKENDS[name]
            assert tuple(cls.supported_methods) == tuple(c.methods), name
            assert bool(cls.supports_invert) == c.invert, name


class TestRoundTrip:
    @pytest.mark.parametrize("case", sorted(ADVERSARIAL))
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_adversarial_agreement_with_numpy(self, name, case):
        _skip_unavailable(name)
        batch = ADVERSARIAL[case]()
        rhs = random_rhs(batch, seed=1)
        _, ref = _solve_with("numpy", batch, rhs)
        _, sol = _solve_with(name, batch, rhs)
        assert float(solution_distance(sol, ref).max()) <= 1e-9
        _assert_agreement(name, "lu", sol, ref)

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_every_supported_method_agrees(self, name, method):
        _skip_unavailable(name)
        c = _contract(name)
        batch_kind = "spd" if method == "cholesky" else "diag_dominant"
        batch = random_batch(
            32, size_range=(1, 32), kind=batch_kind, seed=5
        )
        rhs = random_rhs(batch, seed=6)
        if method not in c.methods:
            with pytest.raises(ValueError):
                _solve_with(name, batch, rhs, method=method)
            return
        _, ref = _solve_with("numpy", batch, rhs, method=method)
        _, sol = _solve_with(name, batch, rhs, method=method)
        _assert_agreement(name, method, sol, ref)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_info_clean_on_solvable_batch(self, name):
        _skip_unavailable(name)
        batch = random_batch(
            16, size_range=(1, 32), kind="diag_dominant", seed=2
        )
        fac, _ = _solve_with(name, batch, random_rhs(batch, seed=3))
        assert fac.ok
        assert not fac.info.any()


class TestInfoMergeOrder:
    """``info`` is reported in *source* block order whatever the
    backend's execution order (bins, threads, per-block loops)."""

    BAD = (2, 9, 17)

    def _flagged_batch(self):
        # sizes spanning several bins so merge order actually matters
        batch = mixed_size_batch(24, tile=32, seed=SEED,
                                 kind="diag_dominant")
        for i in self.BAD:
            m = int(batch.sizes[i])
            batch.data[i, :m, :m] = 0.0
        return batch

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_flagged_positions_follow_source_order(self, name):
        _skip_unavailable(name)
        batch = self._flagged_batch()
        ref = get_backend("numpy").factorize(
            plan_batch(batch), on_singular=None
        )
        fac = get_backend(name).factorize(
            plan_batch(batch), on_singular=None
        )
        assert set(np.nonzero(fac.info)[0]) == set(self.BAD)
        np.testing.assert_array_equal(fac.info, ref.info)


class TestDegradation:
    def _singular_batch(self):
        # every block has one exactly-zero row: all must be flagged
        return random_batch(12, size_range=(2, 32), kind="singular",
                            seed=9)

    @pytest.mark.parametrize("policy", ["identity", "scalar", "shift"])
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_policies_match_legacy_kernel(self, name, policy):
        _skip_unavailable(name)
        batch = self._singular_batch()
        legacy = lu_factor(batch, pivoting="implicit", on_singular=policy)
        fac, _ = _solve_with(
            name, batch, random_rhs(batch, seed=10), on_singular=policy
        )
        rec, ref = fac.degradation, legacy.degradation
        np.testing.assert_array_equal(
            rec.original_info, ref.original_info
        )
        np.testing.assert_array_equal(rec.action, ref.action)
        # shift magnitudes come from norm reductions whose summation
        # width follows the executed tile: equal to rounding only
        np.testing.assert_allclose(rec.shift, ref.shift, rtol=1e-12)
        assert rec.policy == policy
        np.testing.assert_array_equal(fac.info, legacy.info)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_raise_policy_reports_all_singular_blocks(self, name):
        _skip_unavailable(name)
        batch = self._singular_batch()
        with pytest.raises(SingularBlockError) as exc:
            get_backend(name).factorize(
                plan_batch(batch), on_singular="raise"
            )
        # the merged info names every offending block, not just the
        # first failing bin
        assert np.count_nonzero(exc.value.info) == batch.nb

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_raise_on_clean_batch_records_all_clear(self, name):
        _skip_unavailable(name)
        batch = random_batch(8, size=8, kind="diag_dominant", seed=1)
        fac, _ = _solve_with(
            name, batch, random_rhs(batch, seed=2), on_singular="raise"
        )
        assert fac.ok
        assert fac.degradation is not None
        assert not fac.degradation.action.any()

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_no_policy_leaves_info_raw(self, name):
        _skip_unavailable(name)
        batch = self._singular_batch()
        fac = get_backend(name).factorize(
            plan_batch(batch), on_singular=None
        )
        assert not fac.ok
        assert np.count_nonzero(fac.info) == batch.nb
        assert fac.degradation is None


class TestCacheFingerprint:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_stable_hit_and_content_miss(self, name):
        _skip_unavailable(name)
        batch = make_batch(12, 8, SEED, dominant=True)
        rt = BatchRuntime(backend=name)
        rt.factorize(batch)
        assert rt.last_report.cache_hit is False
        rt.factorize(batch)
        assert rt.last_report.cache_hit is True
        # an equal-content copy fingerprints identically
        clone = make_batch(12, 8, SEED, dominant=True)
        rt.factorize(clone)
        assert rt.last_report.cache_hit is True
        # any content change is a different key
        clone.data[0, 0, 0] += 1.0
        rt.factorize(clone)
        assert rt.last_report.cache_hit is False

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_method_is_part_of_the_key(self, name):
        _skip_unavailable(name)
        c = _contract(name)
        if len(c.methods) < 2:
            pytest.skip(f"{name} supports a single method")
        batch = make_batch(6, 8, SEED, dominant=True)
        rt = BatchRuntime(backend=name)
        rt.factorize(batch, method=c.methods[0])
        rt.factorize(batch, method=c.methods[1])
        assert rt.last_report.cache_hit is False


class TestSupportsInvert:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_inverse_mode_runs_or_demotes_visibly(self, name):
        _skip_unavailable(name)
        c = _contract(name)
        batch = make_batch(16, 16, SEED, dominant=True)
        rhs = make_rhs(batch, SEED + 1)
        ref = (
            BatchRuntime(backend="numpy", cache=False)
            .factorize(batch)
            .solve(rhs)
        )
        rt = BatchRuntime(backend=name, cache=False)
        fac = rt.factorize(batch, apply_mode="inverse")
        if c.invert:
            assert fac.effective_apply_mode == "inverse"
        else:
            assert fac.effective_apply_mode == "factor"
            events = rt.last_report.fallback_events
            assert any(
                e.get("stage") == "invert"
                and e.get("error") == "backend_no_invert"
                for e in events
            )
        np.testing.assert_allclose(
            fac.solve(rhs).data, ref.data, rtol=1e-9, atol=1e-12
        )
