"""Tests for diagonal-block extraction (repro.blocking.extraction)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.blocking import (
    extract_blocks,
    extraction_stats,
    supervariable_blocking,
)
from repro.sparse import CsrMatrix, circuit_like, fem_block_2d
from tests.strategies import bounds, random_sparse_dense, seeds


class TestExtractBlocks:
    def test_matches_dense_reference(self):
        A = fem_block_2d(6, 6, 4, seed=0)
        sizes = supervariable_blocking(A, 16)
        batch = extract_blocks(A, sizes)
        starts = np.concatenate([[0], np.cumsum(sizes)])
        for b in range(batch.nb):
            ref = A.extract_block(int(starts[b]), int(sizes[b]))
            np.testing.assert_array_equal(batch.block(b), ref)

    def test_identity_padding(self):
        A = fem_block_2d(4, 4, 3, seed=1)
        sizes = np.full(16, 3)
        batch = extract_blocks(A, sizes, tile=8)
        assert batch.tile == 8
        np.testing.assert_array_equal(
            batch.data[0, 3:, 3:], np.eye(5)
        )

    def test_missing_entries_are_zero(self):
        # a diagonal matrix: extracted blocks are diagonal too
        A = CsrMatrix.identity(8)
        batch = extract_blocks(A, np.array([4, 4]))
        np.testing.assert_array_equal(batch.block(0), np.eye(4))

    def test_dtype_control(self):
        A = fem_block_2d(4, 4, 2, seed=2)
        batch = extract_blocks(A, np.full(16, 2), dtype=np.float32)
        assert batch.dtype == np.float32

    def test_bad_partition_rejected(self):
        A = CsrMatrix.identity(8)
        with pytest.raises(ValueError, match="sum"):
            extract_blocks(A, np.array([4, 3]))
        with pytest.raises(ValueError, match="32"):
            extract_blocks(CsrMatrix.identity(40), np.array([40]))

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, bound=bounds)
    def test_extraction_partition_property(self, seed, bound):
        """Every matrix entry inside a diagonal block appears in the
        batch; everything outside is ignored."""
        D = random_sparse_dense(seed)
        n = D.shape[0]
        A = CsrMatrix.from_dense(D)
        sizes = supervariable_blocking(A, bound)
        batch = extract_blocks(A, sizes)
        starts = np.concatenate([[0], np.cumsum(sizes)])
        rebuilt = np.zeros((n, n))
        for b in range(batch.nb):
            s, m = int(starts[b]), int(sizes[b])
            rebuilt[s : s + m, s : s + m] = batch.block(b)
        for b in range(batch.nb):
            s, m = int(starts[b]), int(sizes[b])
            np.testing.assert_array_equal(
                rebuilt[s : s + m, s : s + m], D[s : s + m, s : s + m]
            )


class TestExtractionStats:
    def test_shared_memory_balances_unbalanced_matrix(self):
        A = circuit_like(1500, seed=5, hub_degree=200)
        sizes = supervariable_blocking(A, 32)
        shared = extraction_stats(A, sizes, "shared-memory")
        naive = extraction_stats(A, sizes, "row-per-thread")
        assert shared.imbalance < 1.5
        assert naive.imbalance > 2.0

    def test_shared_memory_coalesces_index_reads(self):
        A = fem_block_2d(10, 10, 4, seed=6)
        sizes = supervariable_blocking(A, 32)
        shared = extraction_stats(A, sizes, "shared-memory")
        naive = extraction_stats(A, sizes, "row-per-thread")
        # 32-bit indices: up to 8 per sector when coalesced
        assert naive.index_transactions > 4 * shared.index_transactions

    def test_balanced_matrix_strategies_comparable_iterations(self):
        A = fem_block_2d(10, 10, 4, seed=7)
        sizes = supervariable_blocking(A, 32)
        shared = extraction_stats(A, sizes, "shared-memory")
        naive = extraction_stats(A, sizes, "row-per-thread")
        assert shared.imbalance < 1.3
        assert naive.imbalance < 2.0

    def test_unknown_strategy(self):
        A = fem_block_2d(4, 4, 2, seed=8)
        with pytest.raises(ValueError):
            extraction_stats(A, np.full(16, 2), strategy="magic")

    def test_value_reads_only_on_hits_for_shared(self):
        A = circuit_like(1000, seed=9, hub_degree=150)
        sizes = supervariable_blocking(A, 32)
        shared = extraction_stats(A, sizes, "shared-memory")
        naive = extraction_stats(A, sizes, "row-per-thread")
        assert shared.value_transactions < naive.value_transactions
