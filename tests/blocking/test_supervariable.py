"""Tests for supervariable blocking (repro.blocking.supervariable)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.blocking import agglomerate, find_supervariables, supervariable_blocking
from repro.sparse import CsrMatrix, fem_block_2d, laplacian_2d
from tests.strategies import bounds, supervariable_runs


class TestFindSupervariables:
    def test_fem_nodes_recovered(self):
        A = fem_block_2d(6, 6, 4, seed=0)
        sv = find_supervariables(A)
        np.testing.assert_array_equal(sv, np.full(36, 4))

    def test_scalar_matrix_all_singletons(self):
        A = laplacian_2d(5, 5)
        sv = find_supervariables(A)
        # neighbouring Laplacian rows never share a pattern
        np.testing.assert_array_equal(sv, np.ones(25))

    def test_partition_covers_matrix(self):
        A = fem_block_2d(7, 5, 3, seed=1)
        assert find_supervariables(A).sum() == A.n_rows

    def test_identical_value_patterns_grouped(self):
        D = np.zeros((4, 4))
        D[:2, :2] = [[1.0, 2.0], [3.0, 4.0]]  # rows 0,1: same pattern
        D[2, 2] = 1.0
        D[3, 3] = 1.0
        sv = find_supervariables(CsrMatrix.from_dense(D))
        np.testing.assert_array_equal(sv, [2, 1, 1])

    def test_empty_matrix(self):
        A = CsrMatrix(0, 0, [0], [], [])
        assert find_supervariables(A).size == 0


class TestAgglomerate:
    def test_packs_up_to_bound(self):
        sizes = agglomerate(np.array([4, 4, 4, 4]), 8)
        np.testing.assert_array_equal(sizes, [8, 8])

    def test_never_splits_fitting_supervariable(self):
        sizes = agglomerate(np.array([5, 5, 5]), 8)
        np.testing.assert_array_equal(sizes, [5, 5, 5])

    def test_oversized_supervariable_chopped(self):
        sizes = agglomerate(np.array([70]), 32)
        np.testing.assert_array_equal(sizes, [32, 32, 6])

    def test_mixed(self):
        sizes = agglomerate(np.array([3, 3, 40, 2]), 16)
        assert sizes.sum() == 48
        assert sizes.max() <= 16

    def test_bound_one_degenerates_to_scalar(self):
        sizes = agglomerate(np.array([4, 4]), 1)
        np.testing.assert_array_equal(sizes, np.ones(8))

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            agglomerate(np.array([2]), 0)


@settings(max_examples=50, deadline=None)
@given(sv=supervariable_runs, bound=bounds)
def test_agglomerate_properties(sv, bound):
    """For any supervariable sequence: the blocks partition the rows,
    respect the bound, and never waste slots when a merge was legal."""
    sv = np.asarray(sv)
    out = agglomerate(sv, bound)
    assert out.sum() == sv.sum()
    assert out.min() >= 1
    assert out.max() <= bound


class TestEndToEndBlocking:
    @pytest.mark.parametrize("bound", [8, 12, 16, 24, 32])
    def test_paper_bounds(self, bound):
        A = fem_block_2d(8, 8, 4, seed=2)
        sizes = supervariable_blocking(A, bound)
        assert sizes.sum() == A.n_rows
        assert sizes.max() <= bound
        # with 4-dof nodes every block is a multiple of 4 here
        assert (sizes % 4 == 0).all()

    def test_larger_bound_fewer_blocks(self):
        A = fem_block_2d(8, 8, 4, seed=3)
        n8 = supervariable_blocking(A, 8).size
        n32 = supervariable_blocking(A, 32).size
        assert n32 < n8
