"""Tests for the command-line front end (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.matrix == "fem_b4_s0"
        assert args.method == "lu"
        assert args.bound == 32


class TestCommands:
    def test_suite_listing(self, capsys):
        assert main(["suite", "--family", "waveguide"]) == 0
        out = capsys.readouterr().out
        assert "wave_n2048_b4" in out
        assert "fem_b2_s0" not in out

    def test_solve_suite_matrix(self, capsys):
        rc = main(["solve", "fem_b8_s1", "--bound", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged" in out
        assert "blocks" in out

    def test_solve_scalar_jacobi(self, capsys):
        rc = main(["solve", "fem_b8_s1", "--method", "scalar"])
        assert rc == 0

    def test_solve_mtx_file(self, tmp_path, capsys):
        from repro.sparse import fem_block_2d, write_matrix_market

        path = tmp_path / "a.mtx"
        write_matrix_market(fem_block_2d(6, 6, 3, seed=0), path)
        rc = main(["solve", "--mtx", str(path), "--solver", "bicgstab"])
        assert rc == 0

    def test_project(self, capsys):
        rc = main(["project", "lu_factor", "-m", "32", "-n", "40000",
                   "--precision", "single"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "GFLOPS" in out
        # the headline number of the paper
        gf = float(out.split(":")[1].split("GFLOPS")[0])
        assert 480 < gf < 750

    def test_blocks(self, capsys):
        rc = main(["blocks", "fem_b4_s0", "--bound", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "supervariables" in out

    def test_nonconverged_exit_code(self):
        # 3 iterations cannot converge: exit code must be 1
        rc = main(["solve", "fem_b2_s1", "--method", "scalar",
                   "--maxiter", "3"])
        assert rc == 1

    def test_solve_prints_setup_report(self, capsys):
        rc = main(["solve", "fem_b8_s1", "--bound", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "degradation[raise]" in out
        assert "condition estimate" in out

    def test_solve_on_singular_flag_accepted(self, capsys):
        rc = main(["solve", "fem_b8_s1", "--bound", "16",
                   "--on-singular", "identity"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "degradation[identity]" in out

    def test_solve_on_singular_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["solve", "fem_b8_s1", "--on-singular", "panic"])

    def test_solve_with_runtime_backend(self, capsys):
        rc = main(["solve", "fem_b8_s1", "--bound", "16",
                   "--backend", "binned"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "runtime[binned]" in out
        assert "converged" in out

    def test_solve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["solve", "fem_b8_s1", "--backend", "cuda"])


class TestBenchCommand:
    def test_quick_sweep_writes_report(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "bench.json"
        rc = main(["bench", "--quick", "--backends", "numpy,binned",
                   "--out", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "runtime backend sweep" in out
        assert "PASS" in out
        report = json.loads(out_path.read_text())
        assert report["passed"] is True
        assert report["meta"]["backends"] == ["numpy", "binned"]
        names = [c["name"] for c in report["cases"]]
        assert any(n.startswith("size/") for n in names)
        assert any(n.startswith("batch/") for n in names)
        assert any(n.startswith("adversarial/") for n in names)
        for case in report["cases"]:
            assert case["checks"]["binned"]["passed"]

    def test_stdout_json(self, capsys):
        import json

        rc = main(["bench", "--quick", "--backends", "numpy",
                   "--out", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        assert json.loads(out)["meta"]["reference"] == "numpy"

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unavailable backend"):
            main(["bench", "--quick", "--backends", "cuda"])


class TestResilienceFlags:
    def test_solve_with_fallback_chain(self, capsys):
        rc = main(["solve", "fem_b8_s1", "--bound", "16",
                   "--fallback-chain", "numpy,scipy"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "runtime[binned]" in out

    def test_solve_with_watchdog(self, capsys):
        rc = main(["solve", "fem_b8_s1", "--bound", "16", "--watchdog"])
        assert rc == 0

    def test_chaos_argument_parsing(self):
        from repro.cli import _parse_chaos

        assert _parse_chaos(None) is None
        assert _parse_chaos(True) == 0
        assert _parse_chaos("") == 0
        assert _parse_chaos("seed=7") == 7
        assert _parse_chaos("7") == 7
        with pytest.raises(SystemExit):
            _parse_chaos("seed=lots")

    def test_verify_parser_accepts_chaos_forms(self):
        p = build_parser()
        assert p.parse_args(["verify", "--quick"]).chaos is None
        assert p.parse_args(["verify", "--quick", "--chaos"]).chaos is True
        args = p.parse_args(["verify", "--quick", "--chaos", "seed=3"])
        assert args.chaos == "seed=3"


class TestTelemetryFlags:
    def test_solve_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.telemetry import (
            NULL_TRACER,
            get_tracer,
            validate_chrome_trace,
        )

        path = tmp_path / "out.trace.json"
        rc = main(["solve", "fem_b8_s1", "--bound", "16",
                   "--trace", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"trace written to {path}" in out
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert "precond.setup" in names
        assert any(n.startswith("solver.") for n in names)
        # the global tracer was restored after the command
        assert get_tracer() is NULL_TRACER

    def test_solve_metrics_prints_snapshot(self, capsys):
        import json

        rc = main(["solve", "fem_b8_s1", "--bound", "16", "--metrics"])
        out = capsys.readouterr().out
        assert rc == 0
        start = out.index("{")
        snap = json.loads(out[start:])
        assert "repro_solves_total" in snap

    def test_trace_summary_check(self, tmp_path, capsys):
        path = tmp_path / "out.trace.json"
        assert main(["solve", "fem_b8_s1", "--bound", "16",
                     "--trace", str(path)]) == 0
        capsys.readouterr()
        rc = main(["trace-summary", str(path), "--check"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Fig. 9" in out
        assert "trace OK" in out

    def test_trace_summary_check_fails_on_invalid(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.trace.json"
        path.write_text(json.dumps({"traceEvents": [
            {"name": "b", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
        ]}))
        rc = main(["trace-summary", str(path), "--check"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "INVALID" in out

    def test_telemetry_overhead_smoke(self, capsys):
        # tiny workload, generous threshold: exercises the gate wiring,
        # not the perf claim (CI runs the real thresholded version)
        rc = main(["telemetry-overhead", "--repeats", "1", "--nb", "16",
                   "--solves", "1", "--threshold", "100"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK: within threshold" in out

    def test_bench_embeds_schema_and_metrics(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "bench.json"
        rc = main(["bench", "--quick", "--backends", "numpy",
                   "--out", str(out_path)])
        capsys.readouterr()
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["schema"]["name"] == "repro.bench.runtime_sweep"
        assert "metrics" in report
        assert "git_sha" in report["meta"]
