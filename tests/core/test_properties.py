"""Hypothesis property-based tests for the core batched kernels.

These stress the invariants the paper relies on across randomly drawn
batch shapes, sizes and matrix contents:

* PA = LU holds for every implicit-pivoting factorization;
* implicit and explicit pivoting are the *same* factorization;
* LU, GH and GJ all solve the same systems (to rounding);
* permutations produced by pivoting are always valid;
* the padding convention never leaks into active results.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    BatchedMatrices,
    gh_factor,
    gh_solve,
    gj_apply,
    gj_invert,
    lu_factor,
    lu_reconstruct,
    lu_solve,
)
from repro.core.pivoting import perms_valid
from repro.core.validation import (
    factorization_errors,
    max_relative_error,
    solve_residuals,
)
from tests.strategies import batch_shapes, make_batch as _make_batch, \
    make_rhs as _make_rhs

# -- properties ------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(shape=batch_shapes, seed=st.integers(0, 2**20))
def test_lu_reconstruction_property(shape, seed):
    """For any batch, P A = L U within a small backward error."""
    batch = _make_batch(*shape, seed=seed, dominant=True)
    fac = lu_factor(batch)
    assert fac.ok
    assert factorization_errors(batch, lu_reconstruct(fac)).max() < 1e-12


@settings(max_examples=40, deadline=None)
@given(shape=batch_shapes, seed=st.integers(0, 2**20))
def test_implicit_explicit_equivalence_property(shape, seed):
    """Implicit pivoting == explicit pivoting, always."""
    batch = _make_batch(*shape, seed=seed, dominant=False)
    fi = lu_factor(batch, pivoting="implicit")
    fe = lu_factor(batch, pivoting="explicit")
    np.testing.assert_array_equal(fi.perm, fe.perm)
    np.testing.assert_allclose(
        fi.factors.data, fe.factors.data, rtol=0, atol=1e-13
    )


@settings(max_examples=40, deadline=None)
@given(shape=batch_shapes, seed=st.integers(0, 2**20))
def test_perms_always_valid_property(shape, seed):
    batch = _make_batch(*shape, seed=seed, dominant=False)
    fac = lu_factor(batch)
    assert perms_valid(fac.perm)
    gfac = gh_factor(batch)
    assert perms_valid(gfac.colperm)


@settings(max_examples=30, deadline=None)
@given(shape=batch_shapes, seed=st.integers(0, 2**20))
def test_three_methods_agree_property(shape, seed):
    """LU-solve, GH-solve and GJ-apply compute the same solutions."""
    batch = _make_batch(*shape, seed=seed, dominant=True)
    rhs = _make_rhs(batch, seed + 1)
    x_lu = lu_solve(lu_factor(batch), rhs)
    x_gh = gh_solve(gh_factor(batch), rhs)
    x_gj = gj_apply(gj_invert(batch), rhs)
    assert max_relative_error(x_gh, x_lu) < 1e-9
    assert max_relative_error(x_gj, x_lu) < 1e-9


@settings(max_examples=30, deadline=None)
@given(shape=batch_shapes, seed=st.integers(0, 2**20))
def test_solve_residual_property(shape, seed):
    """Backward stability: residuals stay near machine epsilon."""
    batch = _make_batch(*shape, seed=seed, dominant=True)
    rhs = _make_rhs(batch, seed + 2)
    x = lu_solve(lu_factor(batch), rhs)
    assert solve_residuals(batch, x, rhs).max() < 1e-11


@settings(max_examples=30, deadline=None)
@given(shape=batch_shapes, seed=st.integers(0, 2**20))
def test_padding_never_leaks_property(shape, seed):
    """Solutions are exactly zero outside the active block."""
    batch = _make_batch(*shape, seed=seed, dominant=True)
    rhs = _make_rhs(batch, seed + 3)
    for x in (
        lu_solve(lu_factor(batch), rhs),
        gh_solve(gh_factor(batch), rhs),
        gj_apply(gj_invert(batch), rhs),
    ):
        assert (x.data[~x.row_mask()] == 0).all()


@settings(max_examples=30, deadline=None)
@given(
    shape=batch_shapes,
    seed=st.integers(0, 2**20),
    scale=st.floats(min_value=0.01, max_value=100.0),
)
def test_lu_scaling_equivariance_property(shape, seed, scale):
    """Scaling A scales U but leaves L and the pivot order unchanged
    (scaling all candidates uniformly cannot change any argmax)."""
    batch = _make_batch(*shape, seed=seed, dominant=False)
    scaled = BatchedMatrices(batch.data * scale, batch.sizes.copy())
    f1 = lu_factor(batch)
    f2 = lu_factor(scaled)
    np.testing.assert_array_equal(f1.perm, f2.perm)
    L1 = np.tril(f1.factors.data, k=-1)
    L2 = np.tril(f2.factors.data, k=-1)
    np.testing.assert_allclose(L1, L2, rtol=1e-10, atol=1e-12)
