"""Unit tests for the variable-size batched LU (repro.core.batched_lu)."""

import numpy as np
import pytest

from repro.core import (
    BatchedMatrices,
    lu_factor,
    lu_reconstruct,
    lu_solve,
    random_batch,
    random_rhs,
)
from repro.core.validation import (
    factorization_errors,
    growth_factors,
)


@pytest.fixture(params=["implicit", "explicit"])
def pivoting(request):
    return request.param


class TestFactorizationCorrectness:
    def test_reconstruction_uniform(self, pivoting):
        b = random_batch(64, 16, kind="uniform", seed=1)
        fac = lu_factor(b, pivoting=pivoting)
        assert fac.ok
        err = factorization_errors(b, lu_reconstruct(fac))
        assert err.max() < 1e-13

    def test_reconstruction_variable_sizes(self, pivoting):
        b = random_batch(100, (1, 32), kind="uniform", seed=2)
        fac = lu_factor(b, pivoting=pivoting)
        assert fac.ok
        err = factorization_errors(b, lu_reconstruct(fac))
        assert err.max() < 1e-13

    def test_matches_scipy_lu(self, pivoting):
        scipy_linalg = pytest.importorskip("scipy.linalg")
        b = random_batch(8, 8, kind="uniform", seed=3)
        fac = lu_factor(b, pivoting=pivoting)
        for i in range(b.nb):
            lu_ref, piv_ref = scipy_linalg.lu_factor(b.block(i))
            np.testing.assert_allclose(
                fac.factors.block(i), lu_ref, atol=1e-12
            )

    def test_size_one_blocks(self, pivoting):
        b = BatchedMatrices.identity_padded(
            [np.array([[3.0]]), np.array([[-2.0]])], tile=4
        )
        fac = lu_factor(b, pivoting=pivoting)
        assert fac.ok
        assert fac.factors.data[0, 0, 0] == 3.0
        assert fac.factors.data[1, 0, 0] == -2.0

    def test_permutation_rows_are_valid(self, pivoting):
        b = random_batch(40, (2, 32), kind="uniform", seed=4)
        fac = lu_factor(b, pivoting=pivoting)
        tile = fac.tile
        sorted_perm = np.sort(fac.perm, axis=1)
        np.testing.assert_array_equal(
            sorted_perm, np.tile(np.arange(tile), (fac.nb, 1))
        )

    def test_padding_rows_pivot_in_place(self, pivoting):
        # Padding rows must map to themselves: the permutation restricted
        # to rows >= size must be the identity.
        b = random_batch(30, (2, 20), kind="uniform", seed=5, tile=32)
        fac = lu_factor(b, pivoting=pivoting)
        for i in range(b.nb):
            m = int(b.sizes[i])
            np.testing.assert_array_equal(fac.perm[i, m:], np.arange(m, 32))

    def test_pivot_is_column_max(self):
        # After pivoting, |L| <= 1 (multipliers bounded by 1): the
        # defining property of partial pivoting.
        b = random_batch(64, 16, kind="uniform", seed=6)
        fac = lu_factor(b)
        L = np.tril(fac.factors.data, k=-1)
        assert np.abs(L).max() <= 1.0 + 1e-15

    def test_float32_supported(self, pivoting):
        b = random_batch(16, 16, kind="uniform", seed=7, dtype=np.float32)
        fac = lu_factor(b, pivoting=pivoting)
        assert fac.factors.dtype == np.float32
        err = factorization_errors(b, lu_reconstruct(fac))
        assert err.max() < 1e-5


class TestImplicitVsExplicit:
    """The paper's claim: implicit pivoting computes the same factorization
    as explicit pivoting, it only reorganises the data movement."""

    def test_same_factors_and_perm(self):
        b = random_batch(128, (1, 32), kind="uniform", seed=8)
        fi = lu_factor(b, pivoting="implicit")
        fe = lu_factor(b, pivoting="explicit")
        np.testing.assert_array_equal(fi.perm, fe.perm)
        np.testing.assert_allclose(
            fi.factors.data, fe.factors.data, rtol=0, atol=1e-14
        )

    def test_same_on_diag_dominant(self):
        b = random_batch(64, 24, kind="diag_dominant", seed=9, tile=32)
        fi = lu_factor(b, pivoting="implicit")
        fe = lu_factor(b, pivoting="explicit")
        np.testing.assert_array_equal(fi.perm, fe.perm)


class TestNoPivotAblation:
    def test_nopivot_identity_perm(self):
        b = random_batch(16, 8, kind="diag_dominant", seed=10)
        fac = lu_factor(b, pivoting="none")
        np.testing.assert_array_equal(
            fac.perm, np.tile(np.arange(8), (16, 1))
        )

    def test_nopivot_growth_explodes_on_graded_matrices(self):
        # Matrices with tiny leading pivots: unpivoted LU shows large
        # element growth, pivoted LU stays tame (Section II-B).
        rng = np.random.default_rng(11)
        blocks = []
        for _ in range(32):
            M = rng.uniform(-1, 1, (16, 16))
            M[0, 0] = 1e-12
            blocks.append(M)
        b = BatchedMatrices.identity_padded(blocks)
        g_no = growth_factors(b, lu_factor(b, pivoting="none").factors)
        g_pp = growth_factors(b, lu_factor(b, pivoting="implicit").factors)
        assert g_no.max() > 1e6
        assert g_pp.max() < 100

    def test_unknown_strategy_rejected(self):
        b = random_batch(2, 4, seed=0)
        with pytest.raises(ValueError, match="pivoting"):
            lu_factor(b, pivoting="full")


class TestSingularHandling:
    def test_info_flags_singular_blocks(self):
        b = random_batch(12, 8, kind="singular", seed=12)
        fac = lu_factor(b)
        assert (fac.info > 0).all()
        assert not fac.ok

    def test_info_zero_for_regular_blocks(self):
        b = random_batch(12, 8, kind="diag_dominant", seed=13)
        fac = lu_factor(b)
        assert fac.ok
        assert (fac.info == 0).all()

    def test_mixed_batch_flags_only_singular(self):
        good = random_batch(4, 8, kind="diag_dominant", seed=14)
        bad = random_batch(4, 8, kind="singular", seed=15)
        data = np.concatenate([good.data, bad.data])
        sizes = np.concatenate([good.sizes, bad.sizes])
        fac = lu_factor(BatchedMatrices(data, sizes))
        assert (fac.info[:4] == 0).all()
        assert (fac.info[4:] > 0).all()

    def test_factorization_values_finite_despite_singularity(self):
        # LAPACK-style: skip the scaling of a zero-pivot column; the
        # factors stay finite (U is singular but not inf/nan).
        b = random_batch(6, 8, kind="singular", seed=16)
        fac = lu_factor(b)
        assert np.isfinite(fac.factors.data).all()


class TestOverwrite:
    def test_overwrite_destroys_input(self):
        b = random_batch(4, 8, kind="uniform", seed=17)
        orig = b.data.copy()
        lu_factor(b, overwrite=True)
        assert not np.array_equal(b.data, orig)

    def test_no_overwrite_preserves_input(self):
        b = random_batch(4, 8, kind="uniform", seed=18)
        orig = b.data.copy()
        lu_factor(b, overwrite=False)
        np.testing.assert_array_equal(b.data, orig)


class TestEndToEndSolve:
    def test_solve_matches_numpy(self):
        b = random_batch(64, (2, 32), kind="uniform", seed=19)
        rhs = random_rhs(b)
        x = lu_solve(lu_factor(b), rhs)
        for i in range(0, b.nb, 7):
            ref = np.linalg.solve(b.block(i), rhs.vector(i))
            np.testing.assert_allclose(x.vector(i), ref, rtol=1e-9, atol=1e-9)

    def test_backward_error_small_illconditioned(self):
        # Even at condition 1e10 partial pivoting keeps the normwise
        # backward error ||Ax - b|| / (||A|| ||x||) at machine-precision
        # levels (the residual relative to ||b|| scales with cond(A) and
        # may be ~1e-6, which is expected and fine).
        b = random_batch(32, 16, kind="illcond", seed=20)
        rhs = random_rhs(b)
        x = lu_solve(lu_factor(b), rhs)
        r = np.einsum("brc,bc->br", b.data, x.data) - rhs.data
        bwd = np.linalg.norm(r, axis=1) / (
            np.linalg.norm(b.data, axis=(1, 2)) * np.linalg.norm(x.data, axis=1)
        )
        assert bwd.max() < 1e-13
