"""Regression tests: non-finite pivots must be *flagged*, never selected
silently.

NumPy's ``argmax`` treats NaN as maximal, so before the fix the
implicit-pivoting LU would select a NaN pivot and report ``info == 0``
- a factorization full of NaN that claimed success (and the explicit
variant's ``col.max``-based tie detection went all-False, silently
picking row 0).  The cores now map NaN candidates to ``+inf`` before
the argmax (so the lowest contaminated row wins, preserving the
implicit/explicit bitwise-equivalence contract) and test pivots with
``~isfinite`` rather than ``== 0``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

# inf/NaN arithmetic inside contaminated blocks is the point of these
# tests; NumPy's invalid-value warnings are expected noise here
pytestmark = pytest.mark.filterwarnings(
    "ignore:invalid value encountered:RuntimeWarning",
    "ignore:overflow encountered:RuntimeWarning",
    "ignore:divide by zero encountered:RuntimeWarning",
)

from repro.core.batched_gauss_huard import gh_factor
from repro.core.batched_gauss_jordan import gj_invert
from repro.core.batched_cholesky import cholesky_factor
from repro.core.batched_lu import lu_factor
from repro.core.batched_trsv import lu_solve
from repro.core.random_batches import random_batch

from tests.strategies import make_batch, make_rhs

#: the contaminants a decayed upstream computation can hand us
_BAD = (np.nan, np.inf, -np.inf)

shapes = st.tuples(
    st.integers(min_value=1, max_value=10),  # nb
    st.integers(min_value=1, max_value=12),  # max block size
)


def _contaminate(batch, seed: int, value: float) -> int:
    """Poison one active entry of one block; returns the block index."""
    rng = np.random.default_rng([seed, 0xBAD])
    blk = int(rng.integers(batch.nb))
    m = int(batch.sizes[blk])
    i, j = rng.integers(m), rng.integers(m)
    batch.data[blk, i, j] = value
    return blk


@settings(max_examples=60, deadline=None)
@given(shape=shapes, seed=st.integers(0, 2**20), bad=st.sampled_from(_BAD))
def test_nonfinite_pivots_flagged_property(shape, seed, bad):
    nb, max_size = shape
    batch = make_batch(nb, max_size, seed, dominant=False)
    blk = _contaminate(batch, seed, bad)
    for pivoting in ("implicit", "explicit"):
        fac = lu_factor(batch.copy(), pivoting=pivoting)
        assert fac.info[blk] != 0, (
            f"{pivoting}: non-finite pivot selected silently "
            f"(contaminant {bad!r})"
        )
        # the success invariant: a block reported clean holds only
        # finite factors
        clean = fac.info == 0
        assert np.isfinite(fac.factors.data[clean]).all()


@settings(max_examples=60, deadline=None)
@given(shape=shapes, seed=st.integers(0, 2**20), bad=st.sampled_from(_BAD))
def test_implicit_explicit_equivalence_with_nonfinite(shape, seed, bad):
    """The bitwise-equivalence contract survives contamination: both
    variants pick the same (lowest contaminated) pivot rows and flag
    the same step."""
    nb, max_size = shape
    batch = make_batch(nb, max_size, seed, dominant=False)
    _contaminate(batch, seed, bad)
    imp = lu_factor(batch.copy(), pivoting="implicit")
    exp = lu_factor(batch.copy(), pivoting="explicit")
    np.testing.assert_array_equal(imp.info, exp.info)
    np.testing.assert_array_equal(imp.perm, exp.perm)


@settings(max_examples=40, deadline=None)
@given(shape=shapes, seed=st.integers(0, 2**20), bad=st.sampled_from(_BAD))
def test_gj_and_gh_flag_nonfinite_property(shape, seed, bad):
    nb, max_size = shape
    batch = make_batch(nb, max_size, seed, dominant=False)
    blk = _contaminate(batch, seed, bad)
    assert gj_invert(batch.copy()).info[blk] != 0
    assert gh_factor(batch.copy()).info[blk] != 0


def test_cholesky_flags_nan_diagonal():
    batch = random_batch(4, 6, kind="spd", seed=3)
    batch.data[1, 2, 2] = np.nan
    fac = cholesky_factor(batch)
    assert fac.info[1] != 0
    assert (fac.info[[0, 2, 3]] == 0).all()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**20), bad=st.sampled_from(_BAD))
def test_degradation_policy_heals_contaminated_blocks(seed, bad):
    """A contaminated block under ``on_singular="identity"`` is
    substituted like any singular block: the result is ok, all factors
    are finite, and solves produce finite output."""
    batch = make_batch(6, 8, seed, dominant=False)
    blk = _contaminate(batch, seed, bad)
    fac = lu_factor(batch, on_singular="identity")
    assert fac.ok
    assert fac.degradation is not None
    assert fac.degradation.original_info[blk] != 0
    assert np.isfinite(fac.factors.data).all()
    sol = lu_solve(fac, make_rhs(batch, seed + 1))
    assert np.isfinite(sol.data).all()
