"""Unit tests for the batched containers (repro.core.batch)."""

import numpy as np
import pytest

from repro.core.batch import (
    DEFAULT_BINS,
    MAX_TILE,
    BatchedMatrices,
    BatchedVectors,
    round_up_tile,
)


class TestRoundUpTile:
    def test_powers_of_two(self):
        assert round_up_tile(1) == 1
        assert round_up_tile(2) == 2
        assert round_up_tile(3) == 4
        assert round_up_tile(5) == 8
        assert round_up_tile(9) == 16
        assert round_up_tile(17) == 32
        assert round_up_tile(32) == 32

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            round_up_tile(0)

    def test_rejects_oversize(self):
        with pytest.raises(ValueError):
            round_up_tile(MAX_TILE + 1)


class TestBatchedMatricesConstruction:
    def test_zeros_shape_and_sizes(self):
        b = BatchedMatrices.zeros(7, 16)
        assert b.nb == 7
        assert b.tile == 16
        assert len(b) == 7
        assert (b.sizes == 16).all()
        assert b.uniform

    def test_identity_padding_outside_active_block(self):
        m = np.arange(9, dtype=float).reshape(3, 3) + 1
        b = BatchedMatrices.identity_padded([m], tile=8)
        np.testing.assert_array_equal(b.block(0), m)
        pad = b.data[0, 3:, 3:]
        np.testing.assert_array_equal(pad, np.eye(5))
        assert (b.data[0, :3, 3:] == 0).all()
        assert (b.data[0, 3:, :3] == 0).all()

    def test_identity_padded_variable_sizes(self):
        mats = [np.eye(2), np.eye(5), np.eye(3)]
        b = BatchedMatrices.identity_padded(mats)
        assert b.tile == 8  # rounded up from 5
        np.testing.assert_array_equal(b.sizes, [2, 5, 3])
        assert not b.uniform

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="not square"):
            BatchedMatrices.identity_padded([np.zeros((2, 3))])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BatchedMatrices.identity_padded([])

    def test_rejects_bad_dtype(self):
        with pytest.raises(TypeError):
            BatchedMatrices(np.zeros((2, 4, 4), dtype=np.int32), np.full(2, 4))

    def test_rejects_size_out_of_range(self):
        with pytest.raises(ValueError):
            BatchedMatrices(np.zeros((2, 4, 4)), np.array([4, 5]))

    def test_rejects_oversized_block_for_tile(self):
        with pytest.raises(ValueError, match="exceeds tile"):
            BatchedMatrices.identity_padded([np.eye(6)], tile=4)

    def test_noncontiguous_input_made_contiguous(self):
        raw = np.zeros((4, 4, 8))[:, :, ::2]
        b = BatchedMatrices(raw, np.full(4, 4))
        assert b.data.flags.c_contiguous

    def test_from_arrays_defaults_full_tile(self):
        b = BatchedMatrices.from_arrays(np.zeros((3, 8, 8)))
        assert (b.sizes == 8).all()


class TestBatchedMatricesViews:
    def test_block_is_view(self):
        b = BatchedMatrices.zeros(2, 4)
        b.block(1)[0, 0] = 5.0
        assert b.data[1, 0, 0] == 5.0

    def test_blocks_iterates_all(self):
        b = BatchedMatrices.identity_padded([np.eye(2) * i for i in range(1, 4)])
        got = [blk[0, 0] for blk in b.blocks()]
        assert got == [1.0, 2.0, 3.0]

    def test_row_mask(self):
        b = BatchedMatrices.identity_padded([np.eye(2), np.eye(4)], tile=4)
        mask = b.row_mask()
        np.testing.assert_array_equal(mask[0], [True, True, False, False])
        np.testing.assert_array_equal(mask[1], [True] * 4)

    def test_active_mask_counts(self):
        b = BatchedMatrices.identity_padded([np.eye(3)], tile=8)
        assert b.active_mask()[0].sum() == 9

    def test_copy_is_independent(self):
        b = BatchedMatrices.zeros(2, 4)
        c = b.copy()
        c.data[0, 0, 0] = 1.0
        assert b.data[0, 0, 0] == 0.0

    def test_astype_roundtrip(self):
        b = BatchedMatrices.zeros(2, 4, dtype=np.float64)
        c = b.astype(np.float32)
        assert c.dtype == np.float32
        assert b.dtype == np.float64


class TestFlopCounts:
    def test_lu_flops_leading_term(self):
        b = BatchedMatrices.zeros(10, 32)
        # 10 blocks of size 32: 10 * 2/3 * 32^3
        assert b.flops_lu() == int(10 * 2 * 32**3 / 3)

    def test_trsv_flops(self):
        b = BatchedMatrices.zeros(5, 16)
        assert b.flops_trsv_pair() == 5 * 2 * 16**2

    def test_padded_lu_flops_charge_full_tile(self):
        b = BatchedMatrices.identity_padded([np.eye(3), np.eye(7)], tile=8)
        assert b.flops_lu_padded() == int(2 * 2 * 8**3 / 3)
        assert b.flops_lu_padded(tile=16) == int(2 * 2 * 16**3 / 3)
        assert b.flops_lu_padded() >= b.flops_lu()

    def test_padded_lu_flops_reject_bad_tile(self):
        with pytest.raises(ValueError):
            BatchedMatrices.zeros(1, 4).flops_lu_padded(tile=0)


class TestSplitBySize:
    def _mixed(self):
        return BatchedMatrices.identity_padded(
            [np.eye(m) for m in (3, 17, 4, 9, 32, 3)], tile=32
        )

    def test_warp_ladder_assignment(self):
        groups = self._mixed().split_by_size(DEFAULT_BINS)
        # only occupied bins appear (no size lands in (4, 8]), ascending
        assert list(groups) == [4, 16, 32]
        np.testing.assert_array_equal(groups[4], [0, 2, 5])
        np.testing.assert_array_equal(groups[16], [3])
        np.testing.assert_array_equal(groups[32], [1, 4])

    def test_indices_partition_the_batch(self):
        b = self._mixed()
        all_idx = np.concatenate(list(b.split_by_size().values()))
        np.testing.assert_array_equal(np.sort(all_idx), np.arange(b.nb))

    def test_exact_grouping_with_none(self):
        groups = self._mixed().split_by_size(None)
        assert list(groups) == [3, 4, 9, 17, 32]
        np.testing.assert_array_equal(groups[3], [0, 5])

    def test_empty_batch(self):
        b = BatchedMatrices.from_arrays(np.zeros((0, 4, 4)))
        assert b.split_by_size() == {}
        assert b.padding_waste() == {}

    def test_rejects_bad_bins(self):
        b = self._mixed()
        with pytest.raises(ValueError, match="not be empty"):
            b.split_by_size(())
        with pytest.raises(ValueError, match="positive"):
            b.split_by_size((0, 8))
        with pytest.raises(ValueError, match="distinct"):
            b.split_by_size((8, 8))
        with pytest.raises(ValueError, match="exceeds the"):
            b.split_by_size((4, 16))


class TestPaddingWaste:
    def test_per_bin_accounting(self):
        b = BatchedMatrices.identity_padded(
            [np.eye(3), np.eye(4), np.eye(30)], tile=32
        )
        waste = b.padding_waste(DEFAULT_BINS)
        assert set(waste) == {4, 32}
        four = waste[4]
        assert four["nb"] == 2
        assert four["padded_flops"] == int(2 * 2 * 4**3 / 3)
        assert four["useful_flops"] == int(2 * (3**3 + 4**3) / 3)
        assert four["waste_flops"] == (
            four["padded_flops"] - four["useful_flops"]
        )
        assert 0.0 <= four["waste_fraction"] < 1.0

    def test_full_blocks_waste_nothing(self):
        b = BatchedMatrices.identity_padded([np.eye(4), np.eye(4)])
        (only,) = b.padding_waste().values()
        assert only["waste_flops"] == 0
        assert only["waste_fraction"] == 0.0

    def test_exact_bins_waste_nothing(self):
        b = BatchedMatrices.identity_padded(
            [np.eye(m) for m in (3, 17, 9)], tile=32
        )
        for entry in b.padding_waste(None).values():
            assert entry["waste_flops"] == 0


class TestBatchedVectors:
    def test_from_vectors_padding(self):
        v = BatchedVectors.from_vectors([np.ones(3), np.ones(5)])
        assert v.tile == 8
        assert (v.data[0, 3:] == 0).all()
        np.testing.assert_array_equal(v.sizes, [3, 5])

    def test_vector_view(self):
        v = BatchedVectors.from_vectors([np.arange(4.0)])
        v.vector(0)[0] = 9.0
        assert v.data[0, 0] == 9.0
        assert len(list(v.vectors())) == 1

    def test_zeros_with_sizes(self):
        v = BatchedVectors.zeros(3, 8, sizes=[2, 3, 4])
        np.testing.assert_array_equal(v.sizes, [2, 3, 4])
        assert len(v) == 3

    def test_row_mask(self):
        v = BatchedVectors.zeros(1, 4, sizes=[2])
        np.testing.assert_array_equal(v.row_mask()[0], [True, True, False, False])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            BatchedVectors(np.zeros((2, 3, 4)), np.full(2, 3))
        with pytest.raises(ValueError):
            BatchedVectors(np.zeros((2, 4)), np.array([4, 5]))

    def test_copy_independent(self):
        v = BatchedVectors.zeros(2, 4)
        w = v.copy()
        w.data[0, 0] = 3.0
        assert v.data[0, 0] == 0.0
