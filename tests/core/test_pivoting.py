"""Unit tests for permutation bookkeeping (repro.core.pivoting)."""

import numpy as np
import pytest

from repro.core.pivoting import (
    compose_perms,
    identity_perms,
    invert_perms,
    permute_vectors,
    perms_valid,
    steps_to_perm,
)


class TestStepsToPerm:
    def test_identity_marks(self):
        steps = np.tile(np.arange(4), (3, 1))
        perm = steps_to_perm(steps)
        np.testing.assert_array_equal(perm, steps)

    def test_reversal_marks(self):
        steps = np.array([[3, 2, 1, 0]])
        perm = steps_to_perm(steps)
        np.testing.assert_array_equal(perm, [[3, 2, 1, 0]])

    def test_matches_matlab_invert_idiom(self):
        # p(p) = 1:m from Figure 1 is exactly the inverse permutation.
        rng = np.random.default_rng(0)
        steps = np.array([rng.permutation(8) for _ in range(5)])
        perm = steps_to_perm(steps)
        np.testing.assert_array_equal(perm, invert_perms(steps))

    def test_rejects_nonpermutation_marks(self):
        with pytest.raises(ValueError):
            steps_to_perm(np.array([[0, 0, 2, 3]]))


class TestInvertCompose:
    def test_invert_roundtrip(self):
        rng = np.random.default_rng(1)
        perm = np.array([rng.permutation(16) for _ in range(10)])
        np.testing.assert_array_equal(invert_perms(invert_perms(perm)), perm)

    def test_invert_composes_to_identity(self):
        rng = np.random.default_rng(2)
        perm = np.array([rng.permutation(8) for _ in range(4)])
        ident = compose_perms(invert_perms(perm), perm)
        np.testing.assert_array_equal(ident, identity_perms(4, 8))

    def test_compose_application_order(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((6, 8))
        p1 = np.array([rng.permutation(8) for _ in range(6)])
        p2 = np.array([rng.permutation(8) for _ in range(6)])
        via_compose = permute_vectors(x, compose_perms(p2, p1))
        via_sequence = permute_vectors(permute_vectors(x, p1), p2)
        np.testing.assert_array_equal(via_compose, via_sequence)


class TestValidity:
    def test_valid(self):
        assert perms_valid(identity_perms(3, 5))

    def test_invalid_duplicate(self):
        assert not perms_valid(np.array([[0, 0, 1]]))

    def test_invalid_ndim(self):
        assert not perms_valid(np.arange(4))


class TestPermuteVectors:
    def test_gather_semantics(self):
        b = np.array([[10.0, 20.0, 30.0]])
        perm = np.array([[2, 0, 1]])
        np.testing.assert_array_equal(
            permute_vectors(b, perm), [[30.0, 10.0, 20.0]]
        )

    def test_returns_new_array(self):
        b = np.ones((2, 4))
        out = permute_vectors(b, identity_perms(2, 4))
        assert out is not b
