"""Tests for the singular-block substitution engine (repro.core.degradation)."""

import numpy as np
import pytest

from repro.core import (
    BatchedMatrices,
    BatchedVectors,
    SingularBlockError,
    cholesky_factor,
    cholesky_solve,
    gh_factor,
    gh_solve,
    gj_apply,
    gj_invert,
    lu_factor,
    lu_solve,
    random_batch,
)
from repro.core.degradation import (
    ACTION_IDENTITY,
    ACTION_NONE,
    ACTION_SCALAR,
    ACTION_SHIFT,
)

POLICIES = ("identity", "scalar", "shift")


def mixed_batch(seed=0):
    """A batch where blocks 1 and 3 are exactly singular."""
    rng = np.random.default_rng(seed)
    blocks = []
    for i in range(5):
        m = 4 + i
        A = rng.standard_normal((m, m)) + m * np.eye(m)
        if i in (1, 3):
            A[m // 2, :] = 0.0  # exactly singular (zero row)
        blocks.append(A)
    return BatchedMatrices.identity_padded(blocks, tile=16)


def rhs_for(batch, seed=7):
    rng = np.random.default_rng(seed)
    vecs = [rng.standard_normal(s) for s in batch.sizes]
    return BatchedVectors.from_vectors(vecs, tile=batch.tile)


class TestRaisePolicy:
    def test_lu_raises_with_info(self):
        b = mixed_batch()
        with pytest.raises(SingularBlockError, match="on_singular") as exc:
            lu_factor(b, on_singular="raise")
        assert np.array_equal(np.nonzero(exc.value.info)[0], [1, 3])

    def test_default_matches_seed_behaviour(self):
        # without on_singular the factorization must NOT raise: it
        # reports through `info`, exactly as before this feature
        fac = lu_factor(mixed_batch())
        assert not fac.ok
        assert fac.degradation is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_singular"):
            lu_factor(mixed_batch(), on_singular="nonsense")


@pytest.mark.parametrize("policy", POLICIES)
class TestPoliciesAcrossKernels:
    def check(self, fac, solve, batch, policy):
        assert fac.ok  # info cleared: downstream solves accept it
        rec = fac.degradation
        assert rec is not None
        assert rec.policy == policy
        assert rec.n_failed == 2
        assert np.array_equal(np.nonzero(rec.original_info)[0], [1, 3])
        assert np.all(rec.action[[0, 2, 4]] == ACTION_NONE)
        assert np.all(rec.action[[1, 3]] != ACTION_NONE)
        x = solve(fac, rhs_for(batch))
        assert np.isfinite(x.data).all()
        # healthy blocks keep their exact factorization
        for i in (0, 2, 4):
            m = batch.sizes[i]
            ref = np.linalg.solve(
                batch.block(i), rhs_for(batch).data[i, :m]
            )
            np.testing.assert_allclose(x.data[i, :m], ref, atol=1e-9)

    def test_lu(self, policy):
        b = mixed_batch()
        fac = lu_factor(b, on_singular=policy)
        self.check(fac, lu_solve, b, policy)

    def test_gauss_huard(self, policy):
        b = mixed_batch()
        fac = gh_factor(b, on_singular=policy)
        self.check(fac, gh_solve, b, policy)

    def test_gauss_huard_transposed(self, policy):
        b = mixed_batch()
        fac = gh_factor(b, transposed=True, on_singular=policy)
        self.check(fac, gh_solve, b, policy)

    def test_gauss_jordan(self, policy):
        b = mixed_batch()
        inv = gj_invert(b, on_singular=policy)
        self.check(inv, gj_apply, b, policy)

    def test_cholesky(self, policy):
        # SPD batch with one zero block (not SPD -> flagged)
        rng = np.random.default_rng(3)
        blocks = []
        for i in range(4):
            m = 3 + i
            L = rng.standard_normal((m, m))
            A = L @ L.T + m * np.eye(m)
            if i == 2:
                A = np.zeros((m, m))
            blocks.append(A)
        b = BatchedMatrices.identity_padded(blocks, tile=8)
        fac = cholesky_factor(b, on_singular=policy)
        assert fac.ok
        rec = fac.degradation
        assert rec.n_failed == 1
        assert rec.action[2] != ACTION_NONE
        x = cholesky_solve(fac, rhs_for(b))
        assert np.isfinite(x.data).all()


class TestActions:
    def test_identity_action_yields_identity_apply(self):
        b = mixed_batch()
        fac = lu_factor(b, on_singular="identity")
        assert np.all(fac.degradation.action[[1, 3]] == ACTION_IDENTITY)
        r = rhs_for(b)
        x = lu_solve(fac, r)
        for i in (1, 3):
            m = b.sizes[i]
            np.testing.assert_allclose(x.data[i, :m], r.data[i, :m])

    def test_scalar_action_divides_by_diagonal(self):
        b = mixed_batch()
        diags = [np.diag(b.block(i)).copy() for i in range(b.nb)]
        fac = lu_factor(b, on_singular="scalar")
        assert np.all(fac.degradation.action[[1, 3]] == ACTION_SCALAR)
        r = rhs_for(b)
        x = lu_solve(fac, r)
        for i in (1, 3):
            m = b.sizes[i]
            d = np.where(diags[i][:m] == 0.0, 1.0, diags[i][:m])
            np.testing.assert_allclose(x.data[i, :m], r.data[i, :m] / d)

    def test_shift_records_positive_sigma(self):
        b = mixed_batch()
        fac = lu_factor(b, on_singular="shift")
        rec = fac.degradation
        shifted = rec.action == ACTION_SHIFT
        # every shifted block carries its sigma; identity leftovers none
        assert np.all(rec.shift[shifted] > 0.0)
        assert np.all(rec.shift[~shifted] == 0.0)

    def test_shift_solves_against_shifted_block(self):
        # one singular 2x2 block: shift must solve (A + sigma I) x = b
        A = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = BatchedMatrices.identity_padded([A], tile=4)
        fac = lu_factor(b, on_singular="shift")
        rec = fac.degradation
        assert rec.action[0] == ACTION_SHIFT
        sigma = rec.shift[0]
        r = rhs_for(b)
        x = lu_solve(fac, r)
        ref = np.linalg.solve(A + sigma * np.eye(2), r.data[0, :2])
        np.testing.assert_allclose(x.data[0, :2], ref, atol=1e-12)

    def test_record_summary_and_counts(self):
        fac = lu_factor(mixed_batch(), on_singular="identity")
        rec = fac.degradation
        assert rec.counts()["identity"] == 2
        assert "2/5" in rec.summary()
        assert "identity" in rec.summary()
        clean = lu_factor(random_batch(4, 4, seed=0), on_singular="identity")
        assert clean.degradation.summary() == "no fallbacks"


class TestOverwriteSnapshot:
    @pytest.mark.parametrize("policy", ["scalar", "shift"])
    def test_overwrite_true_still_sees_originals(self, policy):
        # overwrite=True destroys the input; the kernel must snapshot
        # before factorizing so scalar/shift can rebuild candidates
        b = mixed_batch()
        expected = lu_factor(b, overwrite=False, on_singular=policy)
        got = lu_factor(b, overwrite=True, on_singular=policy)
        np.testing.assert_allclose(
            got.factors.data, expected.factors.data, atol=1e-13
        )
        np.testing.assert_array_equal(
            got.degradation.action, expected.degradation.action
        )


class TestEdgeGeometry:
    """Regression: tiny and empty batches through factor+solve."""

    @pytest.mark.parametrize("pivoting", ["implicit", "explicit", "none"])
    def test_size_one_blocks_roundtrip(self, pivoting):
        b = BatchedMatrices.identity_padded(
            [np.array([[2.0]]), np.array([[-0.5]]), np.array([[8.0]])],
            tile=2,
        )
        fac = lu_factor(b, pivoting=pivoting)
        assert fac.ok
        r = rhs_for(b)
        x = lu_solve(fac, r)
        np.testing.assert_allclose(
            x.data[:, 0], r.data[:, 0] / np.array([2.0, -0.5, 8.0])
        )

    def test_size_one_singular_block_substituted(self):
        b = BatchedMatrices.identity_padded(
            [np.array([[0.0]]), np.array([[3.0]])], tile=2
        )
        fac = lu_factor(b, on_singular="identity")
        assert fac.ok
        assert fac.degradation.action[0] == ACTION_IDENTITY
        r = rhs_for(b)
        x = lu_solve(fac, r)
        np.testing.assert_allclose(x.data[0, 0], r.data[0, 0])
        np.testing.assert_allclose(x.data[1, 0], r.data[1, 0] / 3.0)

    def test_empty_batch_factor_and_solve(self):
        b = BatchedMatrices.zeros(0, 4)
        fac = lu_factor(b)
        assert fac.ok
        assert fac.info.shape == (0,)
        x = lu_solve(fac, BatchedVectors.zeros(0, 4))
        assert x.data.shape == (0, 4)

    def test_empty_batch_with_policy(self):
        b = BatchedMatrices.zeros(0, 4)
        fac = lu_factor(b, on_singular="identity")
        assert fac.ok
        assert fac.degradation.n_fallbacks == 0
