"""Unit tests for the batched triangular solves (repro.core.batched_trsv)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    BatchedMatrices,
    BatchedVectors,
    lower_unit_solve,
    lu_factor,
    lu_solve,
    random_batch,
    random_rhs,
    upper_solve,
)
from repro.core.validation import max_relative_error, solve_residuals
from tests.strategies import batch_shapes, make_batch, make_rhs, seeds


def _lower_batch(nb=16, tile=16, seed=0):
    """Batch whose strict lower triangle is random, unit diagonal implied."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(-1, 1, (nb, tile, tile))
    data = np.tril(data, k=-1)
    idx = np.arange(tile)
    data[:, idx, idx] = rng.uniform(1.0, 2.0, (nb, tile))  # used as U diag
    return BatchedMatrices.from_arrays(data)


class TestLowerUnitSolve:
    @pytest.mark.parametrize("variant", ["eager", "lazy"])
    def test_matches_dense_solve(self, variant):
        b = _lower_batch(seed=1)
        rhs = random_rhs(b)
        y = lower_unit_solve(b, rhs, variant=variant)
        for i in range(b.nb):
            L = np.tril(b.data[i], k=-1) + np.eye(b.tile)
            ref = np.linalg.solve(L, rhs.data[i])
            np.testing.assert_allclose(y.data[i], ref, rtol=1e-10, atol=1e-12)

    def test_eager_equals_lazy(self):
        b = _lower_batch(seed=2)
        rhs = random_rhs(b)
        ye = lower_unit_solve(b, rhs, variant="eager")
        yl = lower_unit_solve(b, rhs, variant="lazy")
        assert max_relative_error(ye, yl) < 1e-13

    def test_unknown_variant_rejected(self):
        b = _lower_batch()
        with pytest.raises(ValueError):
            lower_unit_solve(b, random_rhs(b), variant="magic")

    def test_overwrite_flag(self):
        b = _lower_batch(seed=3)
        rhs = random_rhs(b)
        out = lower_unit_solve(b, rhs, overwrite=True)
        assert out.data is rhs.data


class TestUpperSolve:
    @pytest.mark.parametrize("variant", ["eager", "lazy"])
    def test_matches_dense_solve(self, variant):
        rng = np.random.default_rng(4)
        data = np.triu(rng.uniform(-1, 1, (8, 12, 12)))
        idx = np.arange(12)
        data[:, idx, idx] = rng.uniform(1.0, 2.0, (8, 12))
        b = BatchedMatrices.from_arrays(data)
        rhs = random_rhs(b)
        x = upper_solve(b, rhs, variant=variant)
        for i in range(b.nb):
            ref = np.linalg.solve(np.triu(b.data[i]), rhs.data[i])
            np.testing.assert_allclose(x.data[i], ref, rtol=1e-10, atol=1e-12)

    def test_batch_mismatch_rejected(self):
        b = _lower_batch(nb=4)
        rhs = BatchedVectors.zeros(5, b.tile)
        with pytest.raises(ValueError, match="mismatch"):
            upper_solve(b, rhs)


class TestGetrs:
    @pytest.mark.parametrize("variant", ["eager", "lazy"])
    def test_full_pipeline_variable_sizes(self, variant):
        b = random_batch(60, (1, 32), kind="uniform", seed=5)
        rhs = random_rhs(b)
        x = lu_solve(lu_factor(b), rhs, variant=variant)
        assert solve_residuals(b, x, rhs).max() < 1e-10

    def test_padding_entries_stay_zero(self):
        b = random_batch(20, (2, 10), kind="diag_dominant", seed=6, tile=16)
        rhs = random_rhs(b)
        x = lu_solve(lu_factor(b), rhs)
        mask = x.row_mask()
        assert (x.data[~mask] == 0).all()

    def test_refuses_singular_factorization(self):
        b = random_batch(4, 8, kind="singular", seed=7)
        fac = lu_factor(b)
        with pytest.raises(ValueError, match="singular"):
            lu_solve(fac, random_rhs(b))

    def test_permutation_is_fused_not_applied_twice(self):
        # Build a matrix requiring a known swap and check the solution,
        # which would be wrong if P were applied to b and to the factors.
        A = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = BatchedMatrices.identity_padded([A], tile=2)
        rhs = BatchedVectors.from_vectors([np.array([3.0, 7.0])], tile=2)
        x = lu_solve(lu_factor(b), rhs)
        np.testing.assert_allclose(x.data[0], [7.0, 3.0])

    def test_float32(self):
        b = random_batch(16, 16, kind="diag_dominant", seed=8, dtype=np.float32)
        rhs = random_rhs(b)
        x = lu_solve(lu_factor(b), rhs)
        assert x.dtype == np.float32
        assert solve_residuals(b, x, rhs).max() < 1e-4


# -- eager/lazy equivalence properties (hypothesis) -------------------------


def _triangular_pair(shape, seed):
    """Unit-lower/upper factor batch + rhs from a random LU."""
    batch = make_batch(*shape, seed=seed, dominant=True)
    fac = lu_factor(batch)
    assert fac.ok
    return fac.factors, make_rhs(batch, seed + 1)


@settings(max_examples=30, deadline=None)
@given(shape=batch_shapes, seed=seeds)
def test_lower_eager_lazy_agree_property(shape, seed):
    """AXPY and DOT formulations of L y = b agree to rounding on any
    random unit-lower batch (size-1 blocks included)."""
    factors, rhs = _triangular_pair(shape, seed)
    ye = lower_unit_solve(factors, rhs, variant="eager")
    yl = lower_unit_solve(factors, rhs, variant="lazy")
    scale = max(1.0, np.abs(ye.data).max())
    assert np.abs(ye.data - yl.data).max() < 1e-13 * scale


@settings(max_examples=30, deadline=None)
@given(shape=batch_shapes, seed=seeds)
def test_upper_eager_lazy_agree_property(shape, seed):
    factors, rhs = _triangular_pair(shape, seed)
    xe = upper_solve(factors, rhs, variant="eager")
    xl = upper_solve(factors, rhs, variant="lazy")
    scale = max(1.0, np.abs(xe.data).max())
    assert np.abs(xe.data - xl.data).max() < 1e-12 * scale


@settings(max_examples=25, deadline=None)
@given(shape=batch_shapes, seed=seeds, zero_at=seeds)
def test_zero_diagonal_infnan_patterns_match_property(shape, seed, zero_at):
    """With a zero on U's diagonal both variants blow up the *same way*:
    matching inf/nan patterns per block (LAPACK getrs semantics)."""
    factors, rhs = _triangular_pair(shape, seed)
    data = factors.data.copy()
    for i in range(factors.nb):
        m = int(factors.sizes[i])
        data[i, zero_at % m, zero_at % m] = 0.0
    broken = BatchedMatrices(data, factors.sizes.copy())
    xe = upper_solve(broken, rhs, variant="eager")
    xl = upper_solve(broken, rhs, variant="lazy")
    assert np.array_equal(np.isnan(xe.data), np.isnan(xl.data))
    assert np.array_equal(np.isinf(xe.data), np.isinf(xl.data))
    finite = np.isfinite(xe.data) & np.isfinite(xl.data)
    scale = max(1.0, np.abs(xe.data[finite]).max(initial=0.0))
    gap = np.abs(xe.data[finite] - xl.data[finite]).max(initial=0.0)
    assert gap < 1e-12 * scale


@pytest.mark.parametrize("variant", ["eager", "lazy"])
def test_empty_batch_and_size_one_blocks(variant):
    """nb = 0 and all-size-1 batches pass through both variants."""
    empty = BatchedMatrices(np.zeros((0, 4, 4)), np.zeros(0, dtype=np.int64))
    erhs = BatchedVectors(np.zeros((0, 4)), np.zeros(0, dtype=np.int64))
    for solve in (lower_unit_solve, upper_solve):
        out = solve(empty, erhs, variant=variant)
        assert out.data.shape == (0, 4)

    ones = random_batch(5, 1, kind="diag_dominant", seed=0)
    rhs = random_rhs(ones)
    x = lu_solve(lu_factor(ones), rhs, variant=variant)
    for i in range(5):
        np.testing.assert_allclose(
            x.vector(i), rhs.vector(i) / ones.block(i)[0, 0], rtol=1e-15
        )
