"""Tests of the explicit-inverse apply path (``repro.core.explicit_inverse``).

The contract under test: ``invert_factors`` turns any factorization
container into a :class:`GJEInverseState` whose active blocks are the
true inverses and whose padding is *exactly* identity (so the
full-tile GEMV of ``inverse_apply`` is safe), and the GEMV apply
agrees with the native triangular-solve apply on the same factors.
"""

import numpy as np
import pytest

from repro.core import (
    GJEInverseState,
    batched_gauss_jordan,
    inverse_apply,
    invert_factors,
)
from repro.core.batched_cholesky import cholesky_factor
from repro.core.batched_gauss_huard import gh_factor
from repro.core.batched_gauss_jordan import gj_invert
from repro.core.batched_lu import lu_factor
from repro.core.batched_trsv import lu_solve
from repro.core.random_batches import random_batch, random_rhs

from tests.strategies import make_batch, make_rhs

SEED = 1234


def _batch(nb=9, tile=8, seed=SEED, dominant=True):
    return make_batch(nb, tile, seed, dominant=dominant)


class TestBatchedGaussJordan:
    def test_returns_state_with_true_inverses(self):
        batch = _batch()
        state = batched_gauss_jordan(batch)
        assert isinstance(state, GJEInverseState)
        assert state.ok and state.method == "gje"
        for i in range(batch.nb):
            m = int(batch.sizes[i])
            np.testing.assert_allclose(
                state.inverses.data[i, :m, :m],
                np.linalg.inv(batch.block(i)),
                rtol=1e-9,
                atol=1e-12,
            )

    def test_geometry_properties(self):
        batch = _batch(nb=5, tile=4)
        state = batched_gauss_jordan(batch)
        assert state.nb == 5 and state.tile == 4
        np.testing.assert_array_equal(state.sizes, batch.sizes)


class TestInvertFactors:
    @pytest.mark.parametrize(
        "factor",
        [
            lambda b: lu_factor(b, pivoting="implicit"),
            lambda b: lu_factor(b, pivoting="explicit"),
            lambda b: gh_factor(b, transposed=False),
            lambda b: gh_factor(b, transposed=True),
        ],
        ids=["lu", "lu_explicit", "gh", "ght"],
    )
    def test_matches_numpy_inverse_on_active_blocks(self, factor):
        batch = _batch(dominant=False)
        state = invert_factors(factor(batch))
        for i in range(batch.nb):
            m = int(batch.sizes[i])
            np.testing.assert_allclose(
                state.inverses.data[i, :m, :m],
                np.linalg.inv(batch.block(i)),
                rtol=1e-7,
                atol=1e-10,
            )

    def test_cholesky_factors_invert(self):
        batch = random_batch(8, (1, 8), kind="spd", seed=SEED)
        state = invert_factors(cholesky_factor(batch))
        for i in range(batch.nb):
            m = int(batch.sizes[i])
            np.testing.assert_allclose(
                state.inverses.data[i, :m, :m],
                np.linalg.inv(batch.block(i)),
                rtol=1e-8,
                atol=1e-11,
            )

    def test_padding_is_exactly_identity(self):
        batch = _batch(nb=7, tile=8)
        state = invert_factors(lu_factor(batch))
        eye = np.eye(batch.tile)
        for i in range(batch.nb):
            m = int(batch.sizes[i])
            inv = state.inverses.data[i]
            np.testing.assert_array_equal(inv[m:, :], eye[m:, :])
            np.testing.assert_array_equal(inv[:, m:], eye[:, m:])

    def test_gje_input_is_rewrapped_not_recomputed(self):
        batch = _batch()
        gj = gj_invert(batch)
        state = invert_factors(gj)
        assert state.inverses.data is gj.inverses.data

    def test_gje_state_passthrough(self):
        state = batched_gauss_jordan(_batch())
        assert invert_factors(state) is state

    def test_not_ok_factors_raise(self):
        batch = _batch(nb=4, tile=4)
        batch.data[2, :4, :4] = 0.0  # singular active block
        fac = lu_factor(batch)
        assert not fac.ok
        with pytest.raises(ValueError, match="singular"):
            invert_factors(fac)

    def test_unknown_container_raises_type_error(self):
        with pytest.raises(TypeError):
            invert_factors(object())


class TestInverseApply:
    def test_agrees_with_lu_solve(self):
        batch = _batch(nb=12, tile=8, dominant=False)
        rhs = make_rhs(batch, SEED + 1)
        fac = lu_factor(batch)
        x_trsv = lu_solve(fac, rhs)
        x_gemv = inverse_apply(invert_factors(fac), rhs)
        np.testing.assert_allclose(
            x_gemv.data, x_trsv.data, rtol=1e-7, atol=1e-10
        )

    def test_padding_passthrough(self):
        batch = _batch(nb=6, tile=8)
        rhs = make_rhs(batch, SEED + 2)
        out = inverse_apply(invert_factors(lu_factor(batch)), rhs)
        # padded rhs entries are zeroed by the masked GEMV
        mask = np.arange(batch.tile)[None, :] >= batch.sizes[:, None]
        assert (out.data[mask] == 0.0).all()

    def test_geometry_mismatch_raises(self):
        state = invert_factors(lu_factor(_batch(nb=4, tile=8)))
        other = random_rhs(_batch(nb=4, tile=4), seed=SEED)
        with pytest.raises(ValueError):
            inverse_apply(state, other)

    def test_not_ok_state_raises(self):
        batch = _batch(nb=3, tile=4)
        state = batched_gauss_jordan(batch)
        state.info[1] = 2  # simulate an unresolved failure
        rhs = make_rhs(batch, SEED)
        with pytest.raises(ValueError):
            inverse_apply(state, rhs)

    def test_singular_policy_inverse_still_applies(self):
        # under a degradation policy the substituted factors are
        # invertible by construction, so the inverse path must work
        batch = _batch(nb=5, tile=4)
        batch.data[0, :4, :4] = 0.0
        fac = lu_factor(batch, on_singular="identity")
        assert fac.ok and fac.degradation is not None
        state = invert_factors(fac)
        assert state.degradation is fac.degradation
        rhs = make_rhs(batch, SEED + 3)
        x_trsv = lu_solve(fac, rhs)
        x_gemv = inverse_apply(state, rhs)
        np.testing.assert_allclose(
            x_gemv.data, x_trsv.data, rtol=1e-9, atol=1e-12
        )
