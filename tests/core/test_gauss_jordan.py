"""Unit tests for batched Gauss-Jordan inversion (repro.core.batched_gauss_jordan)."""

import numpy as np
import pytest

from repro.core import (
    BatchedMatrices,
    BatchedVectors,
    gj_apply,
    gj_invert,
    random_batch,
    random_rhs,
)
from repro.core.validation import solve_residuals


class TestInversion:
    def test_matches_numpy_inverse(self):
        b = random_batch(40, (1, 32), kind="uniform", seed=1)
        inv = gj_invert(b)
        assert inv.ok
        for i in range(b.nb):
            np.testing.assert_allclose(
                inv.inverses.block(i),
                np.linalg.inv(b.block(i)),
                rtol=1e-8,
                atol=1e-8,
            )

    def test_identity_blocks_invert_to_identity(self):
        b = BatchedMatrices.identity_padded([np.eye(5), np.eye(3)], tile=8)
        inv = gj_invert(b)
        np.testing.assert_allclose(inv.inverses.data, b.data, atol=1e-15)

    def test_pivoting_required_case(self):
        A = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = BatchedMatrices.identity_padded([A], tile=2)
        inv = gj_invert(b)
        assert inv.ok
        np.testing.assert_allclose(inv.inverses.data[0], A)  # self-inverse

    def test_padding_remains_identity(self):
        b = random_batch(10, 5, kind="diag_dominant", seed=2, tile=8)
        inv = gj_invert(b)
        np.testing.assert_allclose(
            inv.inverses.data[:, 5:, 5:],
            np.broadcast_to(np.eye(3), (10, 3, 3)),
            atol=1e-14,
        )
        assert np.abs(inv.inverses.data[:, :5, 5:]).max() < 1e-14

    def test_singular_flagged(self):
        b = random_batch(4, 8, kind="singular", seed=3)
        inv = gj_invert(b)
        assert (inv.info > 0).all()
        with pytest.raises(ValueError, match="singular"):
            gj_apply(inv, random_rhs(b))

    def test_overwrite(self):
        b = random_batch(4, 8, kind="uniform", seed=4)
        orig = b.data.copy()
        gj_invert(b, overwrite=True)
        assert not np.array_equal(b.data, orig)


class TestApplication:
    def test_apply_solves_system(self):
        b = random_batch(32, (2, 16), kind="diag_dominant", seed=5)
        rhs = random_rhs(b)
        x = gj_apply(gj_invert(b), rhs)
        assert solve_residuals(b, x, rhs).max() < 1e-11

    def test_apply_zero_pads_solution(self):
        b = random_batch(8, 4, kind="diag_dominant", seed=6, tile=8)
        rhs = random_rhs(b)
        x = gj_apply(gj_invert(b), rhs)
        assert (x.data[:, 4:] == 0).all()

    def test_mismatch_rejected(self):
        b = random_batch(4, 8, seed=7)
        inv = gj_invert(b)
        with pytest.raises(ValueError, match="mismatch"):
            gj_apply(inv, BatchedVectors.zeros(4, 16))


class TestStabilityContrast:
    def test_inversion_residual_worse_on_illconditioned(self):
        """The paper's motivation for factorization-based block-Jacobi:
        explicit inversion can lose accuracy on ill-conditioned blocks
        relative to a factorization-based solve (Section II-C)."""
        from repro.core import lu_factor, lu_solve

        b = random_batch(32, 16, kind="illcond", seed=8)
        rhs = random_rhs(b)
        r_inv = solve_residuals(b, gj_apply(gj_invert(b), rhs), rhs)
        r_fac = solve_residuals(b, lu_solve(lu_factor(b), rhs), rhs)
        # factorization residuals stay at machine-precision levels while
        # inversion residuals scale with the condition number
        assert np.median(r_fac) < np.median(r_inv)
