"""Regression tests for size resolution in repro.core.random_batches.

The historical API overloaded ``size``: a 2-element *tuple* meant a
random ``(lo, hi)`` range while a 2-element *list* meant two explicit
sizes - correct but spelling-dependent.  ``size_range=`` is the
unambiguous replacement; these tests pin both the new keyword and the
preserved legacy behaviour.
"""

import numpy as np
import pytest

from repro.core import random_batch
from repro.core.random_batches import resolve_sizes


def _rng():
    return np.random.default_rng(42)


class TestResolveSizes:
    def test_scalar_size(self):
        np.testing.assert_array_equal(
            resolve_sizes(3, 7, _rng()), [7, 7, 7]
        )

    def test_explicit_sequence(self):
        np.testing.assert_array_equal(
            resolve_sizes(4, [4, 1, 3, 2], _rng()), [4, 1, 3, 2]
        )

    def test_legacy_tuple_is_still_a_range(self):
        sizes = resolve_sizes(50, (2, 5), _rng())
        assert sizes.shape == (50,)
        assert sizes.min() >= 2 and sizes.max() <= 5

    def test_two_element_list_is_still_two_explicit_sizes(self):
        # the spelling distinction the old code relied on, kept working
        np.testing.assert_array_equal(
            resolve_sizes(2, [3, 5], _rng()), [3, 5]
        )

    def test_size_range_keyword_accepts_any_spelling(self):
        for spelling in [(2, 8), [2, 8], np.array([2, 8])]:
            sizes = resolve_sizes(40, size_range=spelling, rng=_rng())
            assert sizes.min() >= 2 and sizes.max() <= 8

    def test_size_range_is_deterministic_in_rng(self):
        a = resolve_sizes(10, size_range=(1, 9), rng=_rng())
        b = resolve_sizes(10, (1, 9), _rng())  # same draw path
        np.testing.assert_array_equal(a, b)

    def test_exactly_one_spec_required(self):
        with pytest.raises(TypeError, match="exactly one"):
            resolve_sizes(4)
        with pytest.raises(TypeError, match="exactly one"):
            resolve_sizes(4, 3, _rng(), size_range=(1, 2))

    def test_wrong_length_mentions_size_range_escape_hatch(self):
        with pytest.raises(ValueError, match="size_range"):
            resolve_sizes(3, [1, 2], _rng())

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError, match="invalid size range"):
            resolve_sizes(4, size_range=(5, 2), rng=_rng())
        with pytest.raises(ValueError, match="pair"):
            resolve_sizes(4, size_range=(1, 2, 3), rng=_rng())

    def test_range_without_rng_rejected(self):
        with pytest.raises(TypeError, match="rng"):
            resolve_sizes(4, size_range=(2, 8))

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            resolve_sizes(1, -3, _rng())
        with pytest.raises(ValueError, match="non-negative"):
            resolve_sizes(3, [1, -2, 3], _rng())


class TestRandomBatchSizeRange:
    def test_keyword_threads_through(self):
        batch = random_batch(30, size_range=(1, 8), seed=0)
        assert batch.sizes.min() >= 1 and batch.sizes.max() <= 8
        assert batch.nb == 30

    def test_same_draws_as_legacy_tuple(self):
        a = random_batch(12, (1, 8), seed=5)
        b = random_batch(12, size_range=(1, 8), seed=5)
        np.testing.assert_array_equal(a.data, b.data)

    def test_double_spec_rejected(self):
        with pytest.raises(TypeError, match="exactly one"):
            random_batch(4, 8, size_range=(1, 8))
