"""Unit tests for the batched Cholesky variant (repro.core.batched_cholesky)."""

import numpy as np
import pytest

from repro.core import (
    BatchedMatrices,
    cholesky_factor,
    cholesky_solve,
    random_batch,
    random_rhs,
)
from repro.core.validation import solve_residuals


class TestFactor:
    def test_matches_numpy_cholesky(self):
        b = random_batch(32, (1, 32), kind="spd", seed=1)
        fac = cholesky_factor(b)
        assert fac.ok
        for i in range(0, b.nb, 3):
            ref = np.linalg.cholesky(b.block(i))
            np.testing.assert_allclose(
                fac.factors.block(i), ref, rtol=1e-10, atol=1e-10
            )

    def test_upper_triangle_zeroed(self):
        b = random_batch(8, 8, kind="spd", seed=2)
        fac = cholesky_factor(b)
        assert (np.triu(fac.factors.data, k=1) == 0).all()

    def test_reconstruction(self):
        b = random_batch(16, (2, 16), kind="spd", seed=3)
        fac = cholesky_factor(b)
        L = fac.factors.data
        rec = L @ L.transpose(0, 2, 1)
        mask = b.active_mask()
        err = np.abs(np.where(mask, rec - b.data, 0.0)).max()
        assert err < 1e-10

    def test_non_spd_flagged(self):
        M = np.array([[1.0, 2.0], [2.0, 1.0]])  # indefinite
        b = BatchedMatrices.identity_padded([M], tile=4)
        fac = cholesky_factor(b)
        assert fac.info[0] == 2
        with pytest.raises(ValueError, match="non-SPD"):
            cholesky_solve(fac, random_rhs(b))

    def test_zero_matrix_flagged_at_step_one(self):
        b = BatchedMatrices.from_arrays(np.zeros((1, 4, 4)))
        fac = cholesky_factor(b)
        assert fac.info[0] == 1

    def test_only_lower_triangle_referenced(self):
        b = random_batch(8, 8, kind="spd", seed=4)
        poisoned = b.copy()
        iu = np.triu_indices(8, k=1)
        poisoned.data[:, iu[0], iu[1]] = 1e30  # garbage above the diagonal
        fac_ref = cholesky_factor(b)
        fac_poison = cholesky_factor(poisoned)
        np.testing.assert_allclose(
            fac_ref.factors.data, fac_poison.factors.data
        )


class TestSolve:
    def test_solve_matches_numpy(self):
        b = random_batch(32, (2, 32), kind="spd", seed=5)
        rhs = random_rhs(b)
        x = cholesky_solve(cholesky_factor(b), rhs)
        for i in range(0, b.nb, 5):
            ref = np.linalg.solve(b.block(i), rhs.vector(i))
            np.testing.assert_allclose(x.vector(i), ref, rtol=1e-8, atol=1e-10)

    def test_residuals_variable_size(self):
        b = random_batch(48, (1, 24), kind="spd", seed=6)
        rhs = random_rhs(b)
        x = cholesky_solve(cholesky_factor(b), rhs)
        assert solve_residuals(b, x, rhs).max() < 1e-11

    def test_float32(self):
        b = random_batch(8, 8, kind="spd", seed=7, dtype=np.float32)
        rhs = random_rhs(b)
        x = cholesky_solve(cholesky_factor(b), rhs)
        assert x.dtype == np.float32
        assert solve_residuals(b, x, rhs).max() < 1e-4

    def test_mismatch_rejected(self):
        from repro.core import BatchedVectors

        b = random_batch(4, 8, kind="spd", seed=8)
        fac = cholesky_factor(b)
        with pytest.raises(ValueError, match="mismatch"):
            cholesky_solve(fac, BatchedVectors.zeros(4, 16))
