"""Unit tests for the Gauss-Huard baselines (repro.core.batched_gauss_huard)."""

import numpy as np
import pytest

from repro.core import (
    BatchedMatrices,
    BatchedVectors,
    gh_factor,
    gh_solve,
    lu_factor,
    lu_solve,
    random_batch,
    random_rhs,
)
from repro.core.validation import max_relative_error, solve_residuals


class TestGHFactorization:
    def test_solve_matches_numpy(self):
        b = random_batch(64, (1, 32), kind="uniform", seed=1)
        rhs = random_rhs(b)
        x = gh_solve(gh_factor(b), rhs)
        for i in range(0, b.nb, 5):
            ref = np.linalg.solve(b.block(i), rhs.vector(i))
            np.testing.assert_allclose(x.vector(i), ref, rtol=1e-9, atol=1e-9)

    def test_2x2_hand_computed(self):
        # A = [[a, b], [c, d]] with |a| dominant: GH stores
        # [[a, b/a], [c, d - c*b/a]].
        A = np.array([[4.0, 2.0], [1.0, 3.0]])
        b = BatchedMatrices.identity_padded([A], tile=2)
        fac = gh_factor(b)
        np.testing.assert_allclose(
            fac.factors.data[0], [[4.0, 0.5], [1.0, 2.5]]
        )
        rhs = BatchedVectors.from_vectors([np.array([10.0, 5.0])], tile=2)
        x = gh_solve(fac, rhs)
        np.testing.assert_allclose(x.data[0], np.linalg.solve(A, [10.0, 5.0]))

    def test_column_pivoting_permutes_solution(self):
        # Row 0 is [0, 1]: GH must pick column 1 as the first pivot and
        # the solution must come back in original ordering.
        A = np.array([[0.0, 2.0], [3.0, 1.0]])
        b = BatchedMatrices.identity_padded([A], tile=2)
        fac = gh_factor(b)
        assert not (fac.colperm[0] == np.arange(2)).all()
        rhs = BatchedVectors.from_vectors([np.array([4.0, 5.0])], tile=2)
        x = gh_solve(fac, rhs)
        np.testing.assert_allclose(x.data[0], np.linalg.solve(A, [4.0, 5.0]))

    def test_colperm_valid_permutations(self):
        b = random_batch(50, (2, 32), kind="uniform", seed=2)
        fac = gh_factor(b)
        np.testing.assert_array_equal(
            np.sort(fac.colperm, axis=1),
            np.tile(np.arange(fac.tile), (fac.nb, 1)),
        )

    def test_padding_columns_pivot_in_place(self):
        b = random_batch(30, (2, 20), kind="uniform", seed=3, tile=32)
        fac = gh_factor(b)
        for i in range(b.nb):
            m = int(b.sizes[i])
            np.testing.assert_array_equal(
                fac.colperm[i, m:], np.arange(m, 32)
            )

    def test_info_flags_singular(self):
        b = random_batch(8, 8, kind="singular", seed=4)
        fac = gh_factor(b)
        assert (fac.info > 0).all()
        with pytest.raises(ValueError, match="singular"):
            gh_solve(fac, random_rhs(b))

    def test_overwrite(self):
        b = random_batch(4, 8, kind="uniform", seed=5)
        orig = b.data.copy()
        gh_factor(b, overwrite=True)
        assert not np.array_equal(b.data, orig)


class TestGHT:
    def test_ght_factors_are_transposed_gh(self):
        b = random_batch(16, 16, kind="uniform", seed=6)
        f = gh_factor(b, transposed=False)
        ft = gh_factor(b, transposed=True)
        np.testing.assert_array_equal(
            ft.factors.data, f.factors.data.transpose(0, 2, 1)
        )
        np.testing.assert_array_equal(ft.colperm, f.colperm)

    def test_ght_solve_agrees_with_gh(self):
        b = random_batch(40, (2, 32), kind="uniform", seed=7)
        rhs = random_rhs(b)
        xg = gh_solve(gh_factor(b), rhs)
        xt = gh_solve(gh_factor(b, transposed=True), rhs)
        # identical math, different traversal order: agreement to a few ulps
        assert max_relative_error(xt, xg) < 1e-12

    def test_ght_residuals(self):
        b = random_batch(40, (2, 32), kind="diag_dominant", seed=8)
        rhs = random_rhs(b)
        x = gh_solve(gh_factor(b, transposed=True), rhs)
        assert solve_residuals(b, x, rhs).max() < 1e-11


class TestGHVersusLU:
    """Section IV-D premise: LU and GH are both backward stable; their
    answers differ only by rounding."""

    def test_solutions_agree_to_rounding(self):
        b = random_batch(64, (2, 32), kind="uniform", seed=9)
        rhs = random_rhs(b)
        x_lu = lu_solve(lu_factor(b), rhs)
        x_gh = gh_solve(gh_factor(b), rhs)
        assert max_relative_error(x_gh, x_lu) < 1e-9

    def test_residuals_comparable(self):
        b = random_batch(64, 24, kind="uniform", seed=10, tile=32)
        rhs = random_rhs(b)
        r_lu = solve_residuals(b, lu_solve(lu_factor(b), rhs), rhs)
        r_gh = solve_residuals(b, gh_solve(gh_factor(b), rhs), rhs)
        # neither is systematically (10x) worse than the other
        assert r_gh.max() < 10 * max(r_lu.max(), 1e-15)
        assert r_lu.max() < 10 * max(r_gh.max(), 1e-15)

    def test_mismatch_rejected(self):
        b = random_batch(4, 8, seed=11)
        fac = gh_factor(b)
        with pytest.raises(ValueError, match="mismatch"):
            gh_solve(fac, BatchedVectors.zeros(3, 8))
