"""Unit tests for repro.core.blas and repro.core.validation."""

import numpy as np

from repro.core import BatchedMatrices, BatchedVectors
from repro.core.blas import (
    batched_apply_row_perm,
    batched_axpy_cols,
    batched_dot_rows,
    batched_gemv,
    batched_ger_update,
    batched_scal_rows,
    batched_swap_rows,
)
from repro.core.validation import (
    factorization_errors,
    growth_factors,
    max_relative_error,
    solve_residuals,
)


class TestBlasKernels:
    def test_scal_rows_masked(self):
        A = np.ones((2, 4, 4))
        mask = np.zeros((2, 4), dtype=bool)
        mask[0, 1] = True
        batched_scal_rows(A, 2, np.array([3.0, 5.0]), mask)
        assert A[0, 1, 2] == 3.0
        assert A[0, 0, 2] == 1.0  # unmasked rows untouched
        assert A[1, 1, 2] == 1.0

    def test_ger_update_trailing_only(self):
        A = np.ones((1, 4, 4))
        pivot_row = np.full((1, 4), 2.0)
        mask = np.ones((1, 4), dtype=bool)
        batched_ger_update(A, 1, pivot_row, mask)
        # columns 0..1 untouched, columns 2..3 updated: 1 - 1*2 = -1
        assert (A[0, :, :2] == 1).all()
        assert (A[0, :, 2:] == -1).all()

    def test_ger_update_last_column_noop(self):
        A = np.ones((1, 3, 3))
        batched_ger_update(A, 2, np.ones((1, 3)), np.ones((1, 3), dtype=bool))
        assert (A == 1).all()

    def test_axpy_cols(self):
        b = np.array([[1.0, 2.0, 3.0]])
        col = np.array([[1.0, 1.0, 1.0]])
        mask = np.array([[False, True, True]])
        batched_axpy_cols(b, col, np.array([2.0]), mask)
        np.testing.assert_array_equal(b, [[1.0, 0.0, 1.0]])

    def test_dot_rows(self):
        row = np.array([[1.0, 2.0, 3.0]])
        b = np.array([[4.0, 5.0, 6.0]])
        assert batched_dot_rows(row, b, 2)[0] == 1 * 4 + 2 * 5
        assert batched_dot_rows(row, b, 0)[0] == 0.0

    def test_gemv_masks_padding(self):
        A = np.ones((1, 4, 4))
        x = np.ones((1, 4))
        y = batched_gemv(A, x, sizes=np.array([2]))
        np.testing.assert_array_equal(y, [[4.0, 4.0, 0.0, 0.0]])

    def test_swap_rows(self):
        A = np.arange(8.0).reshape(1, 4, 2).repeat(2, axis=0).copy()
        batched_swap_rows(A, 0, np.array([2, 0]))
        np.testing.assert_array_equal(A[0, 0], [4.0, 5.0])
        np.testing.assert_array_equal(A[0, 2], [0.0, 1.0])
        np.testing.assert_array_equal(A[1, 0], [0.0, 1.0])  # self-swap

    def test_apply_row_perm(self):
        A = np.arange(8.0).reshape(1, 4, 2)
        perm = np.array([[3, 2, 1, 0]])
        out = batched_apply_row_perm(A, perm)
        np.testing.assert_array_equal(out[0, 0], [6.0, 7.0])
        np.testing.assert_array_equal(out[0, 3], [0.0, 1.0])


class TestValidationHelpers:
    def test_solve_residuals_exact_solution(self):
        b = BatchedMatrices.identity_padded([np.eye(3) * 2], tile=4)
        x = BatchedVectors.from_vectors([np.array([1.0, 2.0, 3.0])], tile=4)
        rhs = BatchedVectors.from_vectors([np.array([2.0, 4.0, 6.0])], tile=4)
        assert solve_residuals(b, x, rhs)[0] < 1e-15

    def test_solve_residuals_zero_rhs_clamped(self):
        b = BatchedMatrices.identity_padded([np.eye(2)], tile=2)
        x = BatchedVectors.from_vectors([np.array([1.0, 0.0])], tile=2)
        rhs = BatchedVectors.from_vectors([np.array([0.0, 0.0])], tile=2)
        assert np.isfinite(solve_residuals(b, x, rhs)[0])

    def test_factorization_errors_identical(self):
        b = BatchedMatrices.identity_padded([np.eye(3)], tile=4)
        assert factorization_errors(b, b.data.copy())[0] == 0.0

    def test_growth_factor_identity(self):
        b = BatchedMatrices.identity_padded([np.eye(4)], tile=4)
        assert growth_factors(b, b)[0] == 1.0

    def test_max_relative_error_scale_invariant_floor(self):
        a = BatchedVectors.from_vectors([np.array([1e-30, 1.0])], tile=2)
        c = BatchedVectors.from_vectors([np.array([2e-30, 1.0])], tile=2)
        # difference of tiny entries is measured against a floor of 1
        assert max_relative_error(c, a) < 1e-15
