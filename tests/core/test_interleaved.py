"""Interleaved (structure-of-arrays) kernels: layout-transform
round-trip properties and bitwise/rounding parity with the AoS cores.

The AoS<->SoA transforms are pure storage relabellings, so the
properties here are exact: byte-for-byte round trips (NaN payloads
included), padding preserved, and the degenerate shapes (empty batch,
single matrix) handled.  The kernel parity tests then pin the contract
the runtime backend relies on: LU factors/permutations/``info`` and the
TRSV sweeps are *bitwise* equal to the AoS kernels, Gauss-Huard agrees
to rounding (its lazy-update einsum may accumulate in a different
order), and the degradation policies produce identical records.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchedMatrices,
    aos_to_soa,
    gh_factor,
    gh_solve,
    interleaved_gh_factor,
    interleaved_gh_solve,
    interleaved_lu_factor,
    interleaved_lu_solve,
    lu_factor,
    lu_solve,
    soa_to_aos,
)
from repro.core.interleaved import interleaved_kernel_pair

from tests.strategies import batch_shapes, make_batch, make_rhs, seeds

SEED = 11


class TestLayoutTransforms:
    @given(shape=batch_shapes, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_matrix_round_trip_is_bit_exact(self, shape, seed):
        nb, max_size = shape
        batch = make_batch(nb, max_size, seed, dominant=False)
        soa = aos_to_soa(batch.data)
        assert soa.shape == (batch.tile, batch.tile, nb)
        assert soa.flags["C_CONTIGUOUS"]
        back = soa_to_aos(soa)
        assert back.shape == batch.data.shape
        assert back.tobytes() == batch.data.tobytes()

    @given(shape=batch_shapes, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_vector_round_trip_is_bit_exact(self, shape, seed):
        nb, max_size = shape
        batch = make_batch(nb, max_size, seed, dominant=False)
        rhs = make_rhs(batch, seed + 1)
        soa = aos_to_soa(rhs.data)
        assert soa.shape == (batch.tile, nb)
        assert soa_to_aos(soa).tobytes() == rhs.data.tobytes()

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_special_values_survive(self, seed):
        # NaN payloads, signed zeros and infinities are storage bits
        # like any other; the transform must not canonicalise them.
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((3, 4, 4))
        data[0, 0, 0] = np.nan
        data[1, 2, 3] = -0.0
        data[2, 1, 1] = np.inf
        assert soa_to_aos(aos_to_soa(data)).tobytes() == data.tobytes()

    @given(shape=batch_shapes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_padding_preserved(self, shape, seed):
        nb, max_size = shape
        batch = make_batch(nb, max_size, seed, dominant=True)
        back = BatchedMatrices(
            soa_to_aos(aos_to_soa(batch.data)), batch.sizes.copy()
        )
        # the identity-padding invariant survives the round trip
        for i in range(nb):
            m = int(batch.sizes[i])
            pad = back.data[i, m:, m:]
            np.testing.assert_array_equal(
                pad, np.eye(batch.tile - m)
            )
            assert not back.data[i, :m, m:].any()
            assert not back.data[i, m:, :m].any()

    def test_empty_batch(self):
        data = np.zeros((0, 8, 8))
        soa = aos_to_soa(data)
        assert soa.shape == (8, 8, 0)
        assert soa_to_aos(soa).shape == (0, 8, 8)
        vec = np.zeros((0, 8))
        assert aos_to_soa(vec).shape == (8, 0)

    def test_single_matrix(self):
        rng = np.random.default_rng(SEED)
        data = rng.standard_normal((1, 4, 4))
        soa = aos_to_soa(data)
        np.testing.assert_array_equal(soa[:, :, 0], data[0])
        assert soa_to_aos(soa).tobytes() == data.tobytes()

    def test_transform_never_aliases_the_input(self):
        # regression: for degenerate shapes (nb == 1, tile == 1) the
        # transposed view is already C-contiguous, so a bare
        # ascontiguousarray would return a view and the in-place SoA
        # kernels would destroy the caller's batch
        for shape in ((1, 4, 4), (4, 1, 1), (1, 1, 1), (1, 4)):
            data = np.random.default_rng(SEED).standard_normal(shape)
            soa = aos_to_soa(data)
            assert not np.shares_memory(soa, data)
            assert not np.shares_memory(soa_to_aos(soa), soa)

    def test_solve_does_not_mutate_rhs(self):
        batch = make_batch(1, 1, SEED, dominant=True)
        rhs = make_rhs(batch, SEED + 1)
        before = rhs.data.copy()
        interleaved_lu_solve(interleaved_lu_factor(batch), rhs)
        interleaved_gh_solve(interleaved_gh_factor(batch), rhs)
        np.testing.assert_array_equal(rhs.data, before)

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            aos_to_soa(np.zeros(5))
        with pytest.raises(ValueError, match="expected"):
            soa_to_aos(np.zeros((2, 2, 2, 2)))


class TestLUParity:
    @given(shape=batch_shapes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_factor_bitwise_equal(self, shape, seed):
        nb, max_size = shape
        batch = make_batch(nb, max_size, seed, dominant=False)
        ref = lu_factor(batch, pivoting="implicit")
        il = interleaved_lu_factor(batch)
        np.testing.assert_array_equal(
            soa_to_aos(il.soa), ref.factors.data
        )
        np.testing.assert_array_equal(il.perm, ref.perm)
        np.testing.assert_array_equal(il.info, ref.info)

    @given(shape=batch_shapes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_solve_bitwise_equal(self, shape, seed):
        nb, max_size = shape
        batch = make_batch(nb, max_size, seed, dominant=True)
        rhs = make_rhs(batch, seed + 1)
        ref = lu_solve(lu_factor(batch), rhs, variant="eager")
        il = interleaved_lu_solve(interleaved_lu_factor(batch), rhs)
        np.testing.assert_array_equal(il.data, ref.data)

    def test_singular_info_and_solve_refusal(self):
        batch = make_batch(6, 8, SEED, dominant=True)
        batch.data[2, : batch.sizes[2], : batch.sizes[2]] = 0.0
        ref = lu_factor(batch)
        il = interleaved_lu_factor(batch)
        np.testing.assert_array_equal(il.info, ref.info)
        assert not il.ok
        rhs = make_rhs(batch, SEED + 1)
        with pytest.raises(ValueError, match="singular"):
            interleaved_lu_solve(il, rhs)

    @pytest.mark.parametrize("policy", ["identity", "scalar", "shift"])
    def test_degradation_policies_match_aos(self, policy):
        batch = make_batch(10, 8, SEED, dominant=True)
        for i in (1, 4):
            batch.data[i, : batch.sizes[i], : batch.sizes[i]] = 0.0
        ref = lu_factor(batch, on_singular=policy)
        il = interleaved_lu_factor(batch, on_singular=policy)
        np.testing.assert_array_equal(
            soa_to_aos(il.soa), ref.factors.data
        )
        np.testing.assert_array_equal(il.info, ref.info)
        np.testing.assert_array_equal(
            il.degradation.original_info, ref.degradation.original_info
        )
        np.testing.assert_array_equal(
            il.degradation.action, ref.degradation.action
        )
        np.testing.assert_array_equal(
            il.degradation.shift, ref.degradation.shift
        )

    def test_to_aos_round_trips_through_reference_solve(self):
        batch = make_batch(8, 8, SEED, dominant=True)
        rhs = make_rhs(batch, SEED + 2)
        il = interleaved_lu_factor(batch)
        aos = il.to_aos()
        np.testing.assert_array_equal(
            lu_solve(aos, rhs).data,
            interleaved_lu_solve(il, rhs).data,
        )


class TestGHParity:
    @pytest.mark.parametrize("transposed", [False, True])
    @given(shape=batch_shapes, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_factor_and_solve_match_to_rounding(
        self, shape, seed, transposed
    ):
        nb, max_size = shape
        batch = make_batch(nb, max_size, seed, dominant=True)
        rhs = make_rhs(batch, seed + 1)
        ref = gh_factor(batch, transposed=transposed)
        il = interleaved_gh_factor(batch, transposed=transposed)
        np.testing.assert_array_equal(il.colperm, ref.colperm)
        np.testing.assert_array_equal(il.info, ref.info)
        np.testing.assert_allclose(
            soa_to_aos(il.soa),
            ref.factors.data,
            rtol=1e-12,
            atol=1e-14,
        )
        np.testing.assert_allclose(
            interleaved_gh_solve(il, rhs).data,
            gh_solve(ref, rhs).data,
            rtol=1e-12,
            atol=1e-14,
        )

    def test_degradation_policies_match_aos(self):
        batch = make_batch(9, 8, SEED, dominant=True)
        batch.data[3, : batch.sizes[3], : batch.sizes[3]] = 0.0
        for policy in ("identity", "scalar", "shift"):
            ref = gh_factor(batch, on_singular=policy)
            il = interleaved_gh_factor(batch, on_singular=policy)
            np.testing.assert_array_equal(il.info, ref.info)
            np.testing.assert_array_equal(
                il.degradation.action, ref.degradation.action
            )


class TestKernelPair:
    def test_supported_methods(self):
        for method in ("lu", "gh", "ght"):
            factor, solve = interleaved_kernel_pair(method)
            assert callable(factor) and callable(solve)

    def test_unsupported_methods_rejected(self):
        for method in ("gje", "cholesky", "qr"):
            with pytest.raises(ValueError, match="interleaved"):
                interleaved_kernel_pair(method)
