"""Tests for the differential harness (repro.verify.oracles)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import random_batch, random_rhs
from repro.verify import (
    SOLVER_ORACLES,
    differential_solve,
    pivot_agreement,
    pivot_tie_batch,
)
from tests.strategies import batch_shapes, make_batch, make_rhs, seeds


class TestDifferentialSolve:
    def test_all_kernels_agree_on_well_conditioned_batch(self):
        batch = random_batch(16, (1, 16), kind="diag_dominant", seed=1)
        report = differential_solve(
            batch,
            random_rhs(batch),
            ["lu", "lu_explicit", "gh", "ght", "gje", "scipy"],
        )
        assert report.passed(1e-9), report.to_dict()
        assert not report.failed_kernels

    def test_cholesky_joins_on_spd(self):
        batch = random_batch(8, (1, 12), kind="spd", seed=2)
        report = differential_solve(
            batch, random_rhs(batch), ["lu", "cholesky"]
        )
        assert report.passed(1e-9), report.to_dict()

    def test_unknown_kernel_rejected(self):
        batch = random_batch(2, 4, seed=3)
        with pytest.raises(ValueError, match="magic"):
            differential_solve(batch, random_rhs(batch), ["lu", "magic"])

    def test_singular_batch_recorded_as_failed_not_raised(self):
        batch = random_batch(4, 8, kind="singular", seed=4)
        report = differential_solve(batch, random_rhs(batch), ["lu", "gje"])
        assert "lu" in report.failed_kernels
        assert not report.passed(np.inf)

    def test_report_serialises(self):
        import json

        batch = random_batch(4, 6, seed=5)
        report = differential_solve(batch, random_rhs(batch), ["lu", "gh"])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["kernels"] == ["gh", "lu"]
        assert "lu|gh" in payload["pairwise_max"] or "gh|lu" in payload[
            "pairwise_max"
        ]

    def test_registry_covers_documented_pipelines(self):
        assert set(SOLVER_ORACLES) == {
            "lu",
            "lu_explicit",
            "gh",
            "ght",
            "gje",
            "cholesky",
            "scipy",
        }


class TestPivotAgreement:
    def test_bitwise_on_random_batch(self):
        batch = random_batch(24, (1, 32), kind="uniform", seed=6)
        agr = pivot_agreement(batch)
        assert agr.passed(factor_tol=0.0), agr.to_dict()

    def test_bitwise_even_under_exact_ties(self):
        # ties are where implicit and explicit can legitimately diverge
        # unless both break them on the original row index
        agr = pivot_agreement(pivot_tie_batch(16, 8, seed=7))
        assert agr.passed(factor_tol=0.0), agr.to_dict()

    def test_detects_a_broken_pivot_choice(self, monkeypatch):
        import repro.core.batched_lu as blu

        monkeypatch.setitem(blu._CORES, "implicit", blu._factor_nopivot)
        agr = pivot_agreement(random_batch(8, 8, kind="uniform", seed=8))
        assert not agr.passed(factor_tol=0.0)
        assert not agr.perms_equal


# -- the ~20-line oracle-driven differential property (ISSUE item 4) -------


@settings(max_examples=25, deadline=None)
@given(shape=batch_shapes, seed=seeds)
def test_gh_ght_and_gje_agree_property(shape, seed):
    """GH == GH-T to rounding and GJE apply == LU solve on any
    well-conditioned variable-size batch."""
    batch = make_batch(*shape, seed=seed, dominant=True)
    rhs = make_rhs(batch, seed + 1)
    report = differential_solve(batch, rhs, ["lu", "gh", "ght", "gje"])
    assert report.passed(1e-9), report.to_dict()
