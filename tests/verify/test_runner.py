"""End-to-end tests of the verification runner and its CLI entry point,
including the mutation smoke test: a deliberately broken pivot choice
must be caught by the differential harness with a nonzero exit."""

import json

import pytest

from repro.cli import main
from repro.verify import run_verification


class TestRunVerification:
    def test_quick_sweep_passes_on_healthy_tree(self):
        report = run_verification(quick=True)
        assert report.passed, report.summary()
        assert report.mode == "quick"
        assert {c.name for c in report.checks} == {
            "growth",
            "pivot_equivalence",
            "backward_error",
            "factorization",
            "differential",
            "simt",
            "apply_modes",
            "backends",
        }

    def test_report_round_trips_through_json(self):
        report = run_verification(quick=True)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["passed"] is True
        assert len(payload["checks"]) == len(report.checks)

    def test_summary_mentions_verdict(self):
        report = run_verification(quick=True)
        assert "verdict: PASS" in report.summary()


class TestMutationSmoke:
    """Break the implicit-pivoting core and demand the gate trips."""

    @pytest.fixture()
    def broken_pivoting(self, monkeypatch):
        import repro.core.batched_lu as blu

        # the no-pivot core factors without row exchanges: numerically
        # unstable and a different permutation than explicit pivoting -
        # exactly the kind of regression the subsystem exists to catch
        monkeypatch.setitem(blu._CORES, "implicit", blu._factor_nopivot)

    def test_differential_harness_catches_it(self, broken_pivoting):
        report = run_verification(quick=True)
        assert not report.passed
        failed = {c.name for c in report.failures}
        assert "pivot_equivalence" in failed
        # the growth/backward-error metrology trips too: no pivoting
        # means unbounded growth on the uniform batches
        assert failed & {"backward_error", "differential", "growth"}

    def test_cli_exits_nonzero(self, broken_pivoting, capsys):
        assert main(["verify", "--quick"]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestCliVerify:
    def test_exit_zero_and_summary(self, capsys):
        assert main(["verify", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out

    def test_json_to_stdout(self, capsys):
        assert main(["verify", "--quick", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["mode"] == "quick"

    def test_json_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["verify", "--quick", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["passed"] is True
        assert "verdict: PASS" in capsys.readouterr().out

    def test_seed_changes_sweep_not_verdict(self):
        assert main(["verify", "--quick", "--seed", "7"]) == 0


class TestChaosCheck:
    def test_chaos_check_appended_and_passes(self):
        report = run_verification(quick=True, chaos=True, chaos_seed=0)
        assert report.passed, report.summary()
        names = [c.name for c in report.checks]
        assert names[-1] == "chaos"
        chaos = report.checks[-1]
        assert chaos.details["passed"] is True
        assert len(chaos.details["scenarios"]) == 12

    def test_chaos_off_by_default(self):
        report = run_verification(quick=True)
        assert "chaos" not in {c.name for c in report.checks}
