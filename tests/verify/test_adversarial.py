"""Tests for the adversarial batch generators (repro.verify.adversarial)."""

import numpy as np
import pytest

from repro.core import lu_factor
from repro.verify import (
    adversarial_suite,
    graded_batch,
    growth_factor,
    mixed_size_batch,
    pivot_tie_batch,
    sign_flip_near_singular_batch,
    wilkinson_batch,
    wilkinson_matrix,
)


class TestWilkinson:
    def test_structure(self):
        W = wilkinson_matrix(4)
        expect = np.array(
            [
                [1.0, 0.0, 0.0, 1.0],
                [-1.0, 1.0, 0.0, 1.0],
                [-1.0, -1.0, 1.0, 1.0],
                [-1.0, -1.0, -1.0, 1.0],
            ]
        )
        np.testing.assert_array_equal(W, expect)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wilkinson_matrix(0)

    def test_no_pivoting_happens_and_growth_is_exact(self):
        batch = wilkinson_batch([1, 4, 9, 16], tile=16)
        fac = lu_factor(batch)
        # partial pivoting keeps the identity permutation on Wilkinson
        np.testing.assert_array_equal(
            fac.perm, np.tile(np.arange(16), (4, 1))
        )
        np.testing.assert_array_equal(
            growth_factor(batch, fac),
            2.0 ** (batch.sizes.astype(float) - 1),
        )


class TestPivotTie:
    def test_entries_are_signs_and_blocks_nonsingular(self):
        batch = pivot_tie_batch(6, 8, seed=11)
        assert set(np.unique(batch.data[:, :8, :8])) <= {-1.0, 1.0}
        for i in range(batch.nb):
            assert round(np.linalg.det(batch.block(i))) != 0

    def test_first_pivot_search_sees_only_ties(self):
        batch = pivot_tie_batch(6, 8, seed=11)
        np.testing.assert_array_equal(
            np.abs(batch.data[:, :8, 0]), np.ones((6, 8))
        )


class TestGraded:
    def test_dynamic_range_spans_requested_decades(self):
        batch = graded_batch(4, 8, decades=6.0, seed=2)
        for i in range(batch.nb):
            B = np.abs(batch.block(i))
            assert B.max() / B[B > 0].min() > 1e6

    def test_nonsingular(self):
        batch = graded_batch(4, 8, seed=2)
        assert lu_factor(batch).ok


class TestSignFlipNearSingular:
    def test_blocks_are_near_singular_but_factorable(self):
        batch = sign_flip_near_singular_batch(4, 8, seed=3, eps=1e-10)
        fac = lu_factor(batch)
        assert fac.ok
        conds = [np.linalg.cond(batch.block(i)) for i in range(batch.nb)]
        assert min(conds) > 1e6

    def test_signs_alternate(self):
        batch = sign_flip_near_singular_batch(4, 4, seed=3)
        tr = [np.trace(batch.block(i)) for i in range(batch.nb)]
        assert tr[0] > 0 > tr[1] and tr[2] > 0 > tr[3]


class TestMixedSize:
    def test_sizes_cycle_extremes(self):
        batch = mixed_size_batch(16, tile=8)
        np.testing.assert_array_equal(
            batch.sizes[:8], [8, 1, 7, 2, 6, 3, 5, 4]
        )
        assert batch.tile == 8

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            mixed_size_batch(4, kind="magic")


class TestSuite:
    def test_contains_all_generators_at_one_tile(self):
        suite = adversarial_suite(tile=8, seed=0)
        assert set(suite) == {
            "wilkinson",
            "pivot_tie",
            "graded",
            "sign_flip",
            "mixed_size",
        }
        assert all(b.tile == 8 for b in suite.values())

    def test_deterministic_in_seed(self):
        a = adversarial_suite(tile=8, seed=4)
        b = adversarial_suite(tile=8, seed=4)
        for name in a:
            np.testing.assert_array_equal(a[name].data, b[name].data)
