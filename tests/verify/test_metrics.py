"""Unit tests for the backward-error metrology (repro.verify.metrics)."""

import numpy as np
import pytest

from repro.core import (
    BatchedMatrices,
    BatchedVectors,
    lu_factor,
    lu_solve,
    random_batch,
    random_rhs,
)
from repro.verify import (
    componentwise_backward_error,
    factorization_error,
    growth_factor,
    normwise_backward_error,
    reconstruction_error,
    residual_norms,
    solution_distance,
    wilkinson_batch,
)


def _problem(nb=12, size=(1, 16), seed=3, kind="diag_dominant"):
    batch = random_batch(nb, size, kind=kind, seed=seed)
    rhs = random_rhs(batch, seed=seed + 1)
    return batch, rhs


class TestNormwiseBackwardError:
    def test_computed_solution_is_tiny(self):
        batch, rhs = _problem()
        x = lu_solve(lu_factor(batch), rhs)
        assert normwise_backward_error(batch, x, rhs).max() < 1e-14

    def test_matches_rigal_gaches_by_hand(self):
        A = np.array([[4.0, 1.0], [1.0, 3.0]])
        b = np.array([1.0, 2.0])
        x = np.array([0.11, 0.59])  # deliberately off
        batch = BatchedMatrices.identity_padded([A], tile=4)
        eta = normwise_backward_error(
            batch,
            BatchedVectors.from_vectors([x], tile=4),
            BatchedVectors.from_vectors([b], tile=4),
        )
        r = b - A @ x
        expect = np.abs(r).max() / (
            np.abs(A).sum(axis=1).max() * np.abs(x).max() + np.abs(b).max()
        )
        np.testing.assert_allclose(eta, [expect], rtol=1e-14)

    def test_padding_excluded(self):
        # same active problem at two tiles must give the same eta
        A = np.array([[4.0, 1.0], [1.0, 3.0]])
        b = np.array([1.0, 2.0])
        x = np.array([0.3, 0.5])
        etas = []
        for tile in (2, 8):
            batch = BatchedMatrices.identity_padded([A], tile=tile)
            etas.append(
                normwise_backward_error(
                    batch,
                    BatchedVectors.from_vectors([x], tile=tile),
                    BatchedVectors.from_vectors([b], tile=tile),
                )[0]
            )
        assert etas[0] == etas[1]


class TestComponentwiseBackwardError:
    def test_computed_solution_is_small(self):
        batch, rhs = _problem(seed=5)
        x = lu_solve(lu_factor(batch), rhs)
        assert componentwise_backward_error(batch, x, rhs).max() < 1e-12

    def test_matches_oettli_prager_by_hand(self):
        A = np.array([[2.0, 0.0], [1.0, 5.0]])
        b = np.array([2.0, 11.0])
        x = np.array([1.01, 1.98])
        batch = BatchedMatrices.identity_padded([A], tile=2)
        omega = componentwise_backward_error(
            batch,
            BatchedVectors.from_vectors([x], tile=2),
            BatchedVectors.from_vectors([b], tile=2),
        )
        r = np.abs(b - A @ x)
        denom = np.abs(A) @ np.abs(x) + np.abs(b)
        np.testing.assert_allclose(omega, [(r / denom).max()], rtol=1e-14)

    def test_zero_residual_zero_denominator_is_zero(self):
        # x = 0, b = 0: residual 0 over denominator 0 counts as exact
        A = np.array([[1.0, 0.0], [0.0, 1.0]])
        batch = BatchedMatrices.identity_padded([A], tile=2)
        z = BatchedVectors.from_vectors([np.zeros(2)], tile=2)
        assert componentwise_backward_error(batch, z, z)[0] == 0.0


class TestResidualAndFactorization:
    def test_residual_norms_match_per_block(self):
        batch, rhs = _problem(seed=7)
        x = lu_solve(lu_factor(batch), rhs)
        res = residual_norms(batch, x, rhs)
        for i in range(batch.nb):
            m = int(batch.sizes[i])
            r = rhs.vector(i) - batch.block(i) @ x.vector(i)
            assert abs(res[i] - np.abs(r).max()) < 1e-15

    def test_factorization_error_small_and_padding_free(self):
        batch, _ = _problem(seed=9, kind="uniform")
        fac = lu_factor(batch)
        assert factorization_error(batch, fac).max() < 1e-14
        assert reconstruction_error(batch, fac).max() < 1e-14


class TestGrowthFactor:
    def test_wilkinson_attains_bound_exactly(self):
        batch = wilkinson_batch([2, 5, 11, 24], tile=32)
        rho = growth_factor(batch, lu_factor(batch))
        np.testing.assert_array_equal(
            rho, 2.0 ** (batch.sizes.astype(float) - 1)
        )

    def test_identity_has_unit_growth(self):
        batch = BatchedMatrices.identity_padded([np.eye(3)], tile=8)
        rho = growth_factor(batch, lu_factor(batch))
        np.testing.assert_array_equal(rho, [1.0])


class TestSolutionDistance:
    def _vecs(self, *arrays, tile=4):
        return [
            BatchedVectors.from_vectors([np.asarray(a, float)], tile=tile)
            for a in arrays
        ]

    def test_identical_is_zero(self):
        x, y = self._vecs([1.0, 2.0], [1.0, 2.0])
        assert solution_distance(x, y)[0] == 0.0

    def test_relative_scaling(self):
        x, y = self._vecs([10.0, 0.0], [10.0, 1.0])
        np.testing.assert_allclose(solution_distance(x, y), [0.1])
        np.testing.assert_allclose(
            solution_distance(x, y, scale="absolute"), [1.0]
        )

    def test_matching_inf_nan_patterns_compare_finite_part(self):
        x, y = self._vecs([np.inf, np.nan, 1.0], [np.inf, np.nan, 1.0])
        assert np.isfinite(solution_distance(x, y)[0])

    def test_mismatched_patterns_are_inf(self):
        x, y = self._vecs([np.inf, 1.0], [1.0, 1.0])
        assert np.isinf(solution_distance(x, y)[0])

    def test_opposite_sign_infs_are_inf(self):
        x, y = self._vecs([np.inf, 1.0], [-np.inf, 1.0])
        assert np.isinf(solution_distance(x, y)[0])

    def test_rejects_mismatched_batches(self):
        x = BatchedVectors.from_vectors([np.ones(2)], tile=4)
        y = BatchedVectors.from_vectors([np.ones(2), np.ones(2)], tile=4)
        with pytest.raises(ValueError):
            solution_distance(x, y)
