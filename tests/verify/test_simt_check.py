"""Tests for the SIMT replay checks (repro.verify.simt_check)."""

import pytest

from repro.gpu import expected_counts
from repro.gpu.closed_forms import contiguous_sectors, strided_sectors
from repro.verify import (
    check_kernel_counts,
    check_warp_vs_reference,
    run_simt_checks,
)
from repro.verify.simt_check import SIMT_KINDS


class TestSectorHelpers:
    def test_contiguous(self):
        # 8 doubles starting at 0: 64 bytes = 2 sectors
        assert contiguous_sectors(0, 8, 8) == 2
        # crossing a sector boundary costs the extra sector
        assert contiguous_sectors(3, 8, 8) == 3
        assert contiguous_sectors(0, 0, 8) == 0

    def test_strided(self):
        # stride-m float64 scatter: every element its own sector
        assert strided_sectors(0, 8, 8, 8) == 8
        # stride 1 degenerates to the contiguous count
        assert strided_sectors(5, 6, 1, 4) == contiguous_sectors(5, 6, 4)


class TestExpectedCounts:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            expected_counts("magic", 4, 8)

    @pytest.mark.parametrize("kind", SIMT_KINDS)
    def test_flops_grow_with_size(self, kind):
        small = expected_counts(kind, 2, 8).flops
        large = expected_counts(kind, 16, 8).flops
        assert large > small


class TestReplayAgainstClosedForms:
    def test_counts_match_everywhere(self):
        mismatches = check_kernel_counts(sizes=(1, 2, 5, 8, 17, 32))
        assert mismatches == [], [m.to_dict() for m in mismatches]

    def test_warp_kernels_match_reference(self):
        problems = check_warp_vs_reference(sizes=(1, 2, 5, 8, 17, 32))
        assert problems == []

    def test_aggregate_runner(self):
        result = run_simt_checks(sizes=(1, 4, 8), dtype_bytes=(8,))
        assert result.passed
        payload = result.to_dict()
        assert payload["passed"] is True
        assert payload["count_mismatches"] == []

    def test_detects_wrong_amount_of_work(self, monkeypatch):
        # shrink the closed form's GER width: replay must notice that
        # the kernel does more work than the (mutated) model claims
        import repro.verify.simt_check as sc

        real = sc.expected_counts

        def lying(kind, m, es, tile=32):
            return real(kind, m, es, tile - 1)

        monkeypatch.setattr(sc, "expected_counts", lying)
        mismatches = sc.check_kernel_counts(
            sizes=(8,), dtype_bytes=(8,), kinds=("lu_factor",)
        )
        assert any(m.counter == "flops" for m in mismatches)
