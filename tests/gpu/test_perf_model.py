"""Tests of the analytic performance model (device, perf, profiles)."""

import numpy as np
import pytest

from repro.gpu import (
    DeviceSpec,
    KernelStats,
    kernel_profile,
    time_batched_kernel,
)


@pytest.fixture
def device():
    return DeviceSpec.p100()


def _simple_stats(**kw) -> KernelStats:
    base = dict(
        arith_instructions=100,
        flops=3200,
        shuffles=50,
        global_load_instructions=10,
        global_load_transactions=80,
        bytes_loaded=2560,
        global_store_instructions=10,
        global_store_transactions=80,
        bytes_stored=2560,
    )
    base.update(kw)
    return KernelStats(**base)


class TestDeviceSpec:
    def test_p100_peaks(self, device):
        # 56 SMs x 2 x 32 lanes x 2 flops x 1.328 GHz ~ 9.5 SP TFLOPS
        assert 9000 < device.peak_gflops(4) < 10000
        assert device.peak_gflops(8) == pytest.approx(
            device.peak_gflops(4) / 2
        )

    def test_occupancy_register_limit(self, device):
        # 64 regs/thread -> 65536/(64*32) = 32 warps/SM
        assert device.concurrent_warps(64) == 32 * 56
        # tiny kernels hit the hardware warp-slot cap
        assert device.concurrent_warps(2) == 64 * 56

    def test_occupancy_shared_limit(self, device):
        conc = device.concurrent_warps(2, shared_per_warp=16 * 1024)
        assert conc == 4 * 56


class TestTimingModel:
    def test_gflops_scale(self, device):
        t = time_batched_kernel(
            _simple_stats(), 10000, 1000.0, 40, device
        )
        assert t.seconds > 0
        assert t.gflops == pytest.approx(1e7 / t.seconds / 1e9)

    def test_ramp_up_with_batch_size(self, device):
        small = time_batched_kernel(_simple_stats(), 100, 1000.0, 40, device)
        big = time_batched_kernel(_simple_stats(), 40000, 1000.0, 40, device)
        assert big.gflops > small.gflops

    def test_saturation(self, device):
        """Beyond saturation GFLOPS stops growing (within 5%)."""
        a = time_batched_kernel(_simple_stats(), 200000, 1000.0, 40, device)
        b = time_batched_kernel(_simple_stats(), 400000, 1000.0, 40, device)
        assert abs(a.gflops - b.gflops) / b.gflops < 0.05

    def test_fp64_not_faster_than_fp32(self, device):
        t32 = time_batched_kernel(
            _simple_stats(), 40000, 1000.0, 40, device, dtype=np.float32
        )
        t64 = time_batched_kernel(
            _simple_stats(), 40000, 1000.0, 40, device, dtype=np.float64
        )
        assert t64.seconds >= t32.seconds

    def test_memory_bound_detection(self, device):
        heavy_mem = _simple_stats(
            global_load_transactions=100000, bytes_loaded=3200000
        )
        t = time_batched_kernel(heavy_mem, 40000, 1000.0, 40, device)
        assert t.bound == "memory"

    def test_strided_reads_cost_more_than_footprint(self, device):
        coalesced = _simple_stats()
        strided = _simple_stats(global_load_transactions=320)
        tc = time_batched_kernel(coalesced, 40000, 1000.0, 40, device)
        ts = time_batched_kernel(strided, 40000, 1000.0, 40, device)
        assert ts.memory_s > tc.memory_s

    def test_rejects_empty_batch(self, device):
        with pytest.raises(ValueError):
            time_batched_kernel(_simple_stats(), 0, 1.0, 40, device)


class TestKernelProfiles:
    def test_profiles_cached(self):
        a = kernel_profile("lu_factor", 16, 8)
        b = kernel_profile("lu_factor", 16, 8)
        assert a is b

    def test_useful_flops_convention(self):
        p = kernel_profile("lu_factor", 16, 8)
        assert p.useful_flops == pytest.approx(2 * 16**3 / 3)
        s = kernel_profile("lu_solve", 16, 8)
        assert s.useful_flops == pytest.approx(2 * 16**2)

    def test_all_kinds_profile(self):
        for kind in (
            "lu_factor", "lu_solve", "gh_factor", "ght_factor",
            "gh_solve", "ght_solve",
        ):
            p = kernel_profile(kind, 8, 4)
            assert p.stats.total_instructions() > 0
            assert p.regs_per_thread > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            kernel_profile("qr_factor", 8, 8)
        with pytest.raises(ValueError):
            kernel_profile("lu_factor", 8, 2)

    def test_fp32_registers_half_of_fp64(self):
        p32 = kernel_profile("lu_factor", 32, 4)
        p64 = kernel_profile("lu_factor", 32, 8)
        assert p64.regs_per_thread > p32.regs_per_thread
