"""Tests for the warp extraction kernel (repro.gpu.kernels.extract)."""

import numpy as np
import pytest

from repro.blocking import supervariable_blocking
from repro.gpu.kernels.extract import warp_extract_block
from repro.gpu.simt import KernelStats
from repro.sparse import CsrMatrix, circuit_like, fem_block_2d


@pytest.fixture(scope="module")
def fem():
    return fem_block_2d(8, 8, 4, seed=0)


@pytest.fixture(scope="module")
def circuit():
    return circuit_like(800, seed=1, hub_degree=150)


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["shared-memory", "row-per-thread"])
    def test_matches_reference_extraction(self, fem, strategy):
        sizes = supervariable_blocking(fem, 16)
        starts = np.concatenate([[0], np.cumsum(sizes)])
        for b in range(0, sizes.size, 5):
            s, m = int(starts[b]), int(sizes[b])
            ref = fem.extract_block(s, m)
            block, _ = warp_extract_block(fem, s, m, strategy=strategy)
            np.testing.assert_array_equal(block, ref)

    @pytest.mark.parametrize("strategy", ["shared-memory", "row-per-thread"])
    def test_unbalanced_matrix(self, circuit, strategy):
        block, _ = warp_extract_block(circuit, 0, 32, strategy=strategy)
        np.testing.assert_array_equal(block, circuit.extract_block(0, 32))

    def test_missing_entries_zero(self):
        A = CsrMatrix.identity(8)
        block, _ = warp_extract_block(A, 0, 8)
        np.testing.assert_array_equal(block, np.eye(8))

    def test_size_one_block(self, fem):
        block, _ = warp_extract_block(fem, 0, 1)
        np.testing.assert_array_equal(block, fem.extract_block(0, 1))

    def test_oversize_rejected(self, fem):
        with pytest.raises(ValueError):
            warp_extract_block(fem, 0, 33)
        with pytest.raises(ValueError):
            warp_extract_block(fem, 0, 4, strategy="magic")


class TestCounters:
    def test_shared_memory_fewer_index_transactions(self, circuit):
        """Figure 3's point: the cooperative sweep coalesces the
        col-indices reads that the naive scheme scatters."""
        s_sh, s_rt = KernelStats(), KernelStats()
        # a block containing a hub row exercises the imbalance
        hub_row = int(np.argmax(circuit.row_nnz()))
        start = max(0, min(hub_row - 8, circuit.n_rows - 32))
        warp_extract_block(circuit, start, 32, "shared-memory", stats=s_sh)
        warp_extract_block(circuit, start, 32, "row-per-thread", stats=s_rt)
        assert s_sh.global_load_transactions < s_rt.global_load_transactions
        # the naive scheme also issues far more load instructions
        # (one sweep per element of the longest row)
        assert s_sh.global_load_instructions < s_rt.global_load_instructions

    def test_values_loaded_only_on_hits(self, fem):
        stats = KernelStats()
        _, stats = warp_extract_block(fem, 0, 16, stats=stats)
        # bytes loaded from the value array = hits * 8 (plus index bytes
        # at 4 each); total hits for this block:
        hits = int(np.count_nonzero(fem.extract_block(0, 16)))
        idx_bytes = 4 * (fem.indptr[16] - fem.indptr[0])
        assert stats.bytes_loaded == idx_bytes + 8 * hits

    def test_output_layout_column_major_coalesced(self, fem):
        _, stats = warp_extract_block(fem, 0, 16)
        # 16 column stores of 16 consecutive fp64 = 4 sectors each
        assert stats.global_store_transactions == 16 * 4
