"""Unit tests for the SIMT warp simulator (repro.gpu.simt)."""

import numpy as np
import pytest

from repro.gpu.simt import (
    GlobalMemory,
    KernelStats,
    SharedMemory,
    Warp,
)


class TestWarpShuffles:
    def test_shfl_broadcast(self):
        w = Warp()
        val = np.arange(32.0)
        out = w.shfl(val, 5)
        assert (out == 5.0).all()
        assert w.stats.shuffles == 1

    def test_shfl_gather_per_lane(self):
        w = Warp()
        val = np.arange(32.0)
        idx = (np.arange(32) + 1) % 32
        out = w.shfl(val, idx)
        np.testing.assert_array_equal(out, val[idx])

    def test_shfl_xor_butterfly(self):
        w = Warp()
        val = np.arange(32.0)
        out = w.shfl_xor(val, 1)
        np.testing.assert_array_equal(out[::2], val[1::2])
        np.testing.assert_array_equal(out[1::2], val[::2])

    def test_ballot(self):
        w = Warp()
        pred = np.zeros(32, dtype=bool)
        pred[[0, 3, 31]] = True
        assert w.ballot(pred) == (1 | (1 << 3) | (1 << 31))
        assert w.stats.ballots == 1


class TestWarpArithmetic:
    def test_fma_counts_flops_per_active_lane(self):
        w = Warp()
        mask = np.zeros(32, dtype=bool)
        mask[:8] = True
        out = w.fma(np.ones(32), np.full(32, 2.0), np.ones(32), mask=mask)
        assert (out[:8] == 3.0).all()
        assert (out[8:] == 1.0).all()  # masked lanes keep c
        assert w.stats.flops == 2 * 8
        assert w.stats.arith_instructions == 1

    def test_div_zero_divisor_passthrough(self):
        w = Warp()
        b = np.ones(32)
        b[3] = 0.0
        out = w.div(np.full(32, 6.0), b)
        assert out[0] == 6.0
        assert out[3] == 6.0  # passthrough, no inf

    def test_mul_sub_masks(self):
        w = Warp()
        m = np.zeros(32, dtype=bool)
        m[0] = True
        out = w.mul(np.full(32, 3.0), np.full(32, 4.0), mask=m)
        assert out[0] == 12.0 and out[1] == 3.0
        out = w.sub(np.full(32, 3.0), np.ones(32), mask=m)
        assert out[0] == 2.0 and out[1] == 3.0


class TestReductions:
    def test_reduce_sum_all_lanes(self):
        w = Warp()
        val = np.arange(32.0)
        out = w.reduce_sum(val)
        assert (out == val.sum()).all()
        assert w.stats.shuffles == 5  # log2(32) butterfly rounds

    def test_reduce_argmax_matches_numpy(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            w = Warp()
            val = rng.standard_normal(32)
            active = rng.random(32) > 0.3
            if not active.any():
                active[0] = True
            idx, mag = w.reduce_argmax_abs(val, active)
            masked = np.where(active, np.abs(val), -1.0)
            assert idx == int(np.argmax(masked))
            assert mag == masked.max()

    def test_reduce_argmax_tie_breaks_low(self):
        w = Warp()
        val = np.zeros(32)
        val[[7, 3, 19]] = 2.0
        idx, _ = w.reduce_argmax_abs(val, np.ones(32, dtype=bool))
        assert idx == 3

    def test_transpose_registers(self):
        w = Warp()
        reg = np.zeros((32, 8))
        reg[:8, :8] = np.arange(64.0).reshape(8, 8)
        out = w.transpose_registers(reg, 8)
        np.testing.assert_array_equal(out[:8, :8], reg[:8, :8].T)
        assert w.stats.shuffles == 8


class TestGlobalMemory:
    def test_coalesced_load_transactions_fp64(self):
        stats = KernelStats()
        g = GlobalMemory(np.arange(64.0), stats)
        g.load(np.arange(32))
        # 32 consecutive fp64 = 256 bytes = 8 sectors
        assert stats.global_load_transactions == 8
        assert stats.bytes_loaded == 256

    def test_coalesced_load_transactions_fp32(self):
        stats = KernelStats()
        g = GlobalMemory(np.arange(64.0, dtype=np.float32), stats)
        g.load(np.arange(32))
        assert stats.global_load_transactions == 4

    def test_strided_load_transactions(self):
        stats = KernelStats()
        g = GlobalMemory(np.zeros(32 * 32), stats)
        g.load(np.arange(32) * 32)  # stride 32 fp64 = 256B apart
        assert stats.global_load_transactions == 32

    def test_masked_lanes_do_not_count(self):
        stats = KernelStats()
        g = GlobalMemory(np.arange(64.0), stats)
        mask = np.zeros(32, dtype=bool)
        mask[:4] = True
        g.load(np.arange(32), mask=mask)
        assert stats.bytes_loaded == 4 * 8
        assert stats.global_load_transactions == 1

    def test_store_roundtrip(self):
        stats = KernelStats()
        arr = np.zeros(32)
        g = GlobalMemory(arr, stats)
        g.store(np.arange(32), np.arange(32.0))
        np.testing.assert_array_equal(arr, np.arange(32.0))
        assert stats.global_store_transactions == 8

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            GlobalMemory(np.zeros((2, 2)), KernelStats())


class TestSharedMemory:
    def test_conflict_free_fp32(self):
        stats = KernelStats()
        s = SharedMemory(64, np.float32, stats)
        s.load(np.arange(32))
        assert stats.shared_conflict_phases == 1

    def test_same_bank_conflicts(self):
        stats = KernelStats()
        s = SharedMemory(32 * 32, np.float32, stats)
        s.load(np.arange(32) * 32)  # all lanes hit bank 0
        assert stats.shared_conflict_phases == 32

    def test_store_data(self):
        stats = KernelStats()
        s = SharedMemory(32, np.float64, stats)
        s.store(np.arange(32), np.arange(32.0))
        np.testing.assert_array_equal(s.array, np.arange(32.0))


class TestKernelStats:
    def test_merge_accumulates(self):
        a, b = KernelStats(), KernelStats()
        a.flops = 10
        b.flops = 5
        b.shuffles = 2
        a.merge(b)
        assert a.flops == 15 and a.shuffles == 2

    def test_total_instructions(self):
        s = KernelStats(
            arith_instructions=3, shuffles=2, global_load_instructions=1
        )
        assert s.total_instructions() == 6

    def test_coalescing_efficiency(self):
        s = KernelStats(global_load_transactions=8, bytes_loaded=256)
        assert s.coalescing_efficiency(8) == 1.0
        s2 = KernelStats(global_load_transactions=32, bytes_loaded=256)
        assert s2.coalescing_efficiency(8) == 0.25
        assert KernelStats().coalescing_efficiency(8) == 1.0
