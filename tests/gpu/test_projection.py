"""Tests of the high-level projections and the cuBLAS baseline model -
including the paper's headline performance claims as assertions."""

import numpy as np
import pytest

from repro.gpu import (
    CUBLAS_TILE_SIZES,
    cublas_padded_size,
    project_kernel,
    project_variable_batch,
)


class TestCublasModel:
    def test_padded_sizes(self):
        assert cublas_padded_size(5, 4) == 8
        assert cublas_padded_size(8, 4) == 8
        assert cublas_padded_size(17, 4) == 29
        assert cublas_padded_size(17, 8) == 20
        assert cublas_padded_size(30, 8) == 32
        with pytest.raises(ValueError):
            cublas_padded_size(33, 4)

    def test_sawtooth_peaks(self):
        for es, dtype in ((4, np.float32), (8, np.float64)):
            g = [
                project_kernel("cublas_factor", m, 40000, dtype=dtype).gflops
                for m in range(4, 33)
            ]
            sizes = list(range(4, 33))
            for t in CUBLAS_TILE_SIZES[es][:-1]:
                i = sizes.index(t)
                assert g[i] > g[i + 1], f"no drop after tile {t} ({es}B)"

    def test_variable_size_rejected(self):
        with pytest.raises(ValueError, match="variable"):
            project_variable_batch("cublas_factor", np.array([4, 8]))


class TestPaperClaims:
    """Section IV's quantitative observations, asserted on the model."""

    def test_sp32_small_lu_reaches_600(self):
        g = project_kernel("lu_factor", 32, 40000, dtype=np.float32).gflops
        assert 480 < g < 750  # paper: "up to 600 GFLOPS"

    def test_dp32_small_lu_reaches_350(self):
        g = project_kernel("lu_factor", 32, 40000, dtype=np.float64).gflops
        assert 280 < g < 450  # paper: "350 GFLOPS"

    def test_cublas_3_5x_slower_at_32(self):
        for dt in (np.float32, np.float64):
            lu = project_kernel("lu_factor", 32, 40000, dtype=dt).gflops
            cu = project_kernel("cublas_factor", 32, 40000, dtype=dt).gflops
            assert 2.5 < lu / cu < 7.0  # paper: ~3.5x

    def test_dp16_lu_below_gh(self):
        lu = project_kernel("lu_factor", 16, 40000, dtype=np.float64).gflops
        gh = project_kernel("gh_factor", 16, 40000, dtype=np.float64).gflops
        assert lu < gh  # paper: "about 35% lower"
        assert lu / gh > 0.5

    def test_ght_factor_slightly_below_gh_at_32(self):
        gh = project_kernel("gh_factor", 32, 40000, dtype=np.float32).gflops
        ght = project_kernel("ght_factor", 32, 40000, dtype=np.float32).gflops
        assert 0.85 < ght / gh < 1.0  # paper: "about 5% below"

    def test_solve_speedups_over_cublas(self):
        # paper: 4.5x (SP) and 4x (DP) at block size 32
        for dt, lo in ((np.float32, 3.0), (np.float64, 3.0)):
            lu = project_kernel("lu_solve", 32, 40000, dtype=dt).gflops
            cu = project_kernel("cublas_solve", 32, 40000, dtype=dt).gflops
            assert lu / cu > lo

    def test_ght_solve_about_2x_gh_solve_at_32(self):
        for dt in (np.float32, np.float64):
            gh = project_kernel("gh_solve", 32, 40000, dtype=dt).gflops
            ght = project_kernel("ght_solve", 32, 40000, dtype=dt).gflops
            assert ght / gh > 1.3  # paper: ~2x

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            project_kernel("qr_factor", 8, 100)


class TestVariableBatchProjection:
    def test_uniform_equals_fixed(self):
        sizes = np.full(5000, 16)
        tv = project_variable_batch("lu_factor", sizes)
        tf = project_kernel("lu_factor", 16, 5000)
        assert tv.gflops == pytest.approx(tf.gflops, rel=0.05)

    def test_mixed_sizes_between_extremes(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(4, 33, size=5000)
        tv = project_variable_batch("lu_factor", sizes)
        lo = project_kernel("lu_factor", 4, 5000)
        hi = project_kernel("lu_factor", 32, 5000)
        assert lo.gflops < tv.gflops < hi.gflops

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            project_variable_batch("lu_factor", np.array([], dtype=int))
