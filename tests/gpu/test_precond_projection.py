"""Tests for the block-Jacobi GPU cost projection
(repro.gpu.precond_projection)."""

import numpy as np
import pytest

from repro.gpu import DeviceSpec, project_block_jacobi
from repro.sparse import circuit_like, fem_block_2d


@pytest.fixture(scope="module")
def fem():
    return fem_block_2d(10, 10, 4, seed=0)


class TestProjection:
    def test_basic_shape(self, fem):
        p = project_block_jacobi(fem, max_block_size=32, method="lu")
        assert p.n_blocks > 0
        assert p.extraction_s > 0
        assert p.factorization_s > 0
        assert p.apply_s > 0
        assert p.setup_s == pytest.approx(
            p.extraction_s + p.factorization_s
        )
        assert p.total_s(100) == pytest.approx(
            p.setup_s + 100 * p.apply_s
        )

    def test_methods_within_factor_two(self, fem):
        totals = {
            m: project_block_jacobi(fem, 32, m).total_s(200)
            for m in ("lu", "gh", "ght")
        }
        assert max(totals.values()) < 2.0 * min(totals.values())

    def test_gh_apply_pays_for_noncoalesced_reads(self, fem):
        gh = project_block_jacobi(fem, 32, "gh")
        ght = project_block_jacobi(fem, 32, "ght")
        assert gh.apply_s > ght.apply_s
        # ...paid for at factorization time instead
        assert ght.factorization_s >= gh.factorization_s

    def test_smaller_bound_more_blocks_less_factor_work(self, fem):
        p8 = project_block_jacobi(fem, 8, "lu")
        p32 = project_block_jacobi(fem, 32, "lu")
        assert p8.n_blocks > p32.n_blocks
        # 8x8 LU work per unknown << 32x32 work per unknown
        assert p8.factorization_s < p32.factorization_s

    def test_explicit_block_sizes(self, fem):
        sizes = np.full(fem.n_rows // 4, 4)
        p = project_block_jacobi(fem, method="lu", block_sizes=sizes)
        assert p.n_blocks == sizes.size

    def test_device_override(self, fem):
        p100 = project_block_jacobi(fem, 32, "lu", device=DeviceSpec.p100())
        v100 = project_block_jacobi(fem, 32, "lu", device=DeviceSpec.v100())
        assert v100.apply_s <= p100.apply_s  # newer device, more bandwidth

    def test_unknown_method_rejected(self, fem):
        with pytest.raises(ValueError, match="method"):
            project_block_jacobi(fem, 32, "cublas")

    def test_unbalanced_matrix_extraction_dominates_less_with_shared(self):
        A = circuit_like(1500, seed=1, hub_degree=200)
        p = project_block_jacobi(A, 32, "lu")
        # extraction is a one-off cost comparable to the factorization,
        # not orders of magnitude beyond it (the shared-memory scheme's
        # whole purpose on such matrices)
        assert p.extraction_s < 10 * p.factorization_s
