"""Warp kernels vs the NumPy batched reference (bit-level fidelity)."""

import numpy as np
import pytest

from repro.core import (
    BatchedMatrices,
    BatchedVectors,
    gh_factor,
    gh_solve,
    lu_factor,
    lu_solve,
)
from repro.gpu.kernels.gauss_huard import warp_gh_factor, warp_gh_solve
from repro.gpu.kernels.lu import warp_lu_factor, warp_lu_solve
from repro.gpu.simt import KernelStats


def _problem(m, seed=0, dominant=False):
    rng = np.random.default_rng(seed)
    M = rng.uniform(-1, 1, (m, m))
    if dominant:
        M += m * np.eye(m)
    else:
        M += 0.1 * np.eye(m)
    b = rng.uniform(-1, 1, m)
    return M, b


def _reference(M, b):
    batch = BatchedMatrices.identity_padded([M], tile=32)
    rhs = BatchedVectors.from_vectors([b], tile=32)
    return batch, rhs


SIZES = [1, 2, 3, 5, 8, 13, 16, 21, 27, 32]


class TestWarpLU:
    @pytest.mark.parametrize("m", SIZES)
    def test_factors_bitwise_equal_to_numpy(self, m):
        M, b = _problem(m, seed=m)
        batch, _ = _reference(M, b)
        ref = lu_factor(batch)
        f, perm, info, _ = warp_lu_factor(M)
        np.testing.assert_array_equal(f, ref.factors.block(0))
        np.testing.assert_array_equal(perm, ref.perm[0])
        assert info == ref.info[0]

    @pytest.mark.parametrize("m", SIZES)
    def test_solve_bitwise_equal_to_numpy(self, m):
        M, b = _problem(m, seed=m + 100)
        batch, rhs = _reference(M, b)
        ref = lu_solve(lu_factor(batch), rhs)
        f, perm, _, _ = warp_lu_factor(M)
        x, _ = warp_lu_solve(f, perm, b)
        np.testing.assert_array_equal(x, ref.vector(0))

    def test_pivoting_actually_happens(self):
        M = np.array([[0.0, 1.0], [1.0, 0.0]])
        f, perm, info, _ = warp_lu_factor(M)
        assert info == 0
        assert perm[0] == 1 and perm[1] == 0

    def test_singular_flagged(self):
        M = np.zeros((4, 4))
        _, _, info, _ = warp_lu_factor(M)
        assert info == 1

    def test_counts_independent_of_values(self):
        """Implicit pivoting executes the same instruction stream
        whatever the pivot order - the property that lets one profile
        characterise the whole batch."""
        m = 16
        s1, s2 = KernelStats(), KernelStats()
        warp_lu_factor(_problem(m, seed=1)[0], stats=s1)
        warp_lu_factor(_problem(m, seed=2, dominant=True)[0], stats=s2)
        assert s1 == s2

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            warp_lu_factor(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            warp_lu_factor(np.zeros((33, 33)))

    def test_eager_padding_waste_in_flop_counter(self):
        """The GER spans the full tile: executed flops exceed the
        useful count for m < 32 (the Section IV-B effect)."""
        stats = KernelStats()
        warp_lu_factor(_problem(16, seed=3)[0], stats=stats)
        useful = 2 * 16**3 / 3
        assert stats.flops > 1.5 * useful

    def test_fp32_kernel(self):
        M, b = _problem(8, seed=4)
        f, perm, info, stats = warp_lu_factor(M, dtype=np.float32)
        assert f.dtype == np.float32
        assert info == 0
        # coalesced fp32 loads: half the sectors of fp64
        s64 = KernelStats()
        warp_lu_factor(M, stats=s64)
        assert stats.global_load_transactions < s64.global_load_transactions


class TestWarpGH:
    @pytest.mark.parametrize("m", SIZES)
    def test_factors_close_to_numpy(self, m):
        M, b = _problem(m, seed=m + 200)
        batch, _ = _reference(M, b)
        ref = gh_factor(batch)
        f, cp, info, _ = warp_gh_factor(M)
        np.testing.assert_allclose(
            f, ref.factors.block(0), rtol=1e-12, atol=1e-13
        )
        np.testing.assert_array_equal(cp[:m], ref.colperm[0][:m])
        assert info == ref.info[0]

    @pytest.mark.parametrize("m", SIZES)
    @pytest.mark.parametrize("transposed", [False, True])
    def test_solve_close_to_numpy(self, m, transposed):
        M, b = _problem(m, seed=m + 300)
        batch, rhs = _reference(M, b)
        ref = gh_solve(gh_factor(batch), rhs)
        f, cp, _, _ = warp_gh_factor(M, transposed=transposed)
        x, _ = warp_gh_solve(f, cp, b, transposed=transposed)
        np.testing.assert_allclose(
            x, ref.vector(0), rtol=1e-9, atol=1e-11
        )

    def test_ght_store_transactions_exceed_gh(self):
        """GH-T pays non-coalesced writes in the factorization."""
        M, _ = _problem(32, seed=5)
        s_gh, s_ght = KernelStats(), KernelStats()
        warp_gh_factor(M, transposed=False, stats=s_gh)
        warp_gh_factor(M, transposed=True, stats=s_ght)
        assert s_ght.global_store_transactions > 3 * s_gh.global_store_transactions
        # ...and identical instruction mix otherwise
        assert s_ght.shuffles == s_gh.shuffles
        assert s_ght.arith_instructions == s_gh.arith_instructions

    def test_gh_solve_load_transactions_exceed_ght(self):
        """GH-T's whole point: the apply's row loads become coalesced."""
        M, b = _problem(32, seed=6)
        f, cp, _, _ = warp_gh_factor(M)
        s_gh, s_ght = KernelStats(), KernelStats()
        warp_gh_solve(f, cp, b, transposed=False, stats=s_gh)
        warp_gh_solve(f, cp, b, transposed=True, stats=s_ght)
        assert s_gh.global_load_transactions > 3 * s_ght.global_load_transactions

    def test_lazy_schedule_beats_eager_below_tile(self):
        """At m=16 the lazy GH issues fewer arithmetic instructions
        than the eager LU (padding waste); at m=32 the order flips."""
        M16, _ = _problem(16, seed=7)
        M32, _ = _problem(32, seed=8)
        lu16, gh16 = KernelStats(), KernelStats()
        warp_lu_factor(M16, stats=lu16)
        warp_gh_factor(M16, stats=gh16)
        assert gh16.total_instructions() < lu16.total_instructions()
        lu32, gh32 = KernelStats(), KernelStats()
        warp_lu_factor(M32, stats=lu32)
        warp_gh_factor(M32, stats=gh32)
        assert lu32.total_instructions() < gh32.total_instructions()
