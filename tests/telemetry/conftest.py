"""Telemetry test fixtures: isolate the global tracer and registry.

Every test in this package runs against a pristine null tracer and an
empty metrics registry, and restores both afterwards - the telemetry
globals are process-wide, so a leaked tracer would silently slow (and
couple) every other test.
"""

import pytest

from repro.telemetry import get_metrics, set_tracer


@pytest.fixture(autouse=True)
def _clean_telemetry():
    set_tracer(None)
    get_metrics().reset()
    yield
    set_tracer(None)
    get_metrics().reset()
