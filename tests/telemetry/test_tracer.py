"""Span tracer unit tests: fake clock, nesting, threads, null path."""

import threading

import pytest

from repro.telemetry import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.telemetry.tracer import _NULL_SPAN


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestSpans:
    def test_durations_from_injected_clock(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("outer"):
            clock.advance(2.0)
        (span,) = tr.spans()
        assert span.name == "outer"
        assert span.start == 0.0  # relative to construction
        assert span.duration == 2.0

    def test_nesting_parents_follow_the_stack(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("a") as a:
            with tr.span("b") as b:
                with tr.span("c") as c:
                    pass
        assert a.parent_id is None
        assert b.parent_id == a.span_id
        assert c.parent_id == b.span_id

    def test_attributes_at_open_and_en_route(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("s", backend="binned") as sp:
            sp.set(cache_hit=True)
        assert sp.attrs == {"backend": "binned", "cache_hit": True}

    def test_end_attrs_and_idempotence(self):
        tr = Tracer(clock=FakeClock())
        sp = tr.begin("s")
        tr.end(sp, outcome="ok")
        tr.end(sp, outcome="overwritten?")  # second end is a no-op
        assert sp.attrs == {"outcome": "ok"}
        assert len(tr.spans()) == 1

    def test_end_unwinds_deeper_spans(self):
        # an exception that skips inner end() calls must not leave the
        # per-thread stack unbalanced
        clock = FakeClock()
        tr = Tracer(clock=clock)
        outer = tr.begin("outer")
        tr.begin("inner1")
        tr.begin("inner2")
        clock.advance(1.0)
        tr.end(outer)
        assert not tr.open_spans()
        names = {s.name for s in tr.spans()}
        assert names == {"outer", "inner1", "inner2"}
        # a fresh span opens at the root again
        with tr.span("next") as sp:
            pass
        assert sp.parent_id is None

    def test_exception_inside_with_block_still_seals(self):
        tr = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        (span,) = tr.spans()
        assert span.end is not None

    def test_events_parent_to_innermost_open_span(self):
        tr = Tracer(clock=FakeClock())
        tr.event("orphan")
        with tr.span("s") as sp:
            tr.event("child", i=3)
        orphan, child = tr.events()
        assert orphan["parent_id"] is None
        assert child["parent_id"] == sp.span_id
        assert child["attrs"] == {"i": 3}

    def test_threads_get_independent_stacks(self):
        tr = Tracer(clock=FakeClock())
        done = threading.Event()

        def worker():
            with tr.span("worker.outer"):
                with tr.span("worker.inner"):
                    pass
            done.set()

        with tr.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.is_set()
        by_name = {s.name: s for s in tr.spans()}
        # the worker's root is NOT parented to the main thread's span
        assert by_name["worker.outer"].parent_id is None
        assert (
            by_name["worker.inner"].parent_id
            == by_name["worker.outer"].span_id
        )
        assert by_name["worker.outer"].tid != by_name["main"].tid

    def test_clear(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("s"):
            tr.event("e")
        tr.clear()
        assert tr.spans() == [] and tr.events() == []


class TestContextPropagation:
    def test_copied_context_carries_parentage(self):
        # the span stack lives in a contextvar, so a copied context
        # (what asyncio.to_thread does) preserves the parent edge
        # even across threads
        import contextvars

        tr = Tracer(clock=FakeClock())
        outer = tr.begin("outer")
        ctx = contextvars.copy_context()
        results = []

        def worker():
            child = ctx.run(lambda: tr.begin("child"))
            ctx.run(lambda: tr.end(child))
            results.append(child)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        tr.end(outer)
        assert results[0].parent_id == outer.span_id

    def test_current_span(self):
        tr = Tracer(clock=FakeClock())
        assert tr.current_span() is None
        with tr.span("a") as a:
            assert tr.current_span() is a
            with tr.span("b") as b:
                assert tr.current_span() is b
            assert tr.current_span() is a
        assert tr.current_span() is None

    def test_detached_span_is_not_an_ancestor(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("ctx"):
            d = tr.begin("envelope", detached=True)
            with tr.span("inner") as inner:
                pass
            tr.end(d)
        # detached spans still record their parent but never become
        # one through the stack
        assert d.parent_id is not None
        assert inner.parent_id != d.span_id

    def test_explicit_parent_override(self):
        tr = Tracer(clock=FakeClock())
        a = tr.begin("a", detached=True)
        b = tr.begin("b", parent=a, detached=True)
        assert b.parent_id == a.span_id
        tr.end(b)
        tr.end(a)

    def test_ending_foreign_span_does_not_unwind_stack(self):
        tr = Tracer(clock=FakeClock())
        d = tr.begin("detached", detached=True)
        with tr.span("live") as live:
            tr.end(d, outcome="done")  # seals only the foreign span
            assert d.end is not None
            assert tr.current_span() is live
        assert live.end is not None


class TestLinks:
    def test_add_link_records_span_ids(self):
        tr = Tracer(clock=FakeClock())
        a = tr.begin("a", detached=True)
        b = tr.begin("b", detached=True)
        launch = tr.begin("launch", detached=True)
        launch.add_link(a)
        launch.add_link(b.span_id)
        launch.add_link(a)  # dedup
        launch.add_link(None)  # ignored
        for s in (launch, b, a):
            tr.end(s)
        assert launch.links == [a.span_id, b.span_id]

    def test_null_span_accepts_links(self):
        span = NULL_TRACER.begin("x", detached=True)
        span.add_link(span)
        span.finish()
        assert span is _NULL_SPAN


class TestGlobals:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_set_and_restore(self):
        tr = Tracer()
        assert set_tracer(tr) is tr
        assert get_tracer() is tr
        set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_tracing_scope_restores_previous(self):
        outer = Tracer()
        set_tracer(outer)
        with tracing() as tr:
            assert get_tracer() is tr
            assert tr is not outer
        assert get_tracer() is outer

    def test_tracing_restores_on_exception(self):
        with pytest.raises(ValueError):
            with tracing():
                raise ValueError("x")
        assert get_tracer() is NULL_TRACER


class TestNullTracer:
    def test_shared_singleton_span(self):
        null = NullTracer()
        assert null.span("a") is _NULL_SPAN
        assert null.begin("b") is _NULL_SPAN
        assert _NULL_SPAN.set(x=1) is _NULL_SPAN
        assert _NULL_SPAN.event("e") is None
        with null.span("c") as sp:
            assert sp is _NULL_SPAN

    def test_collections_empty(self):
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.open_spans() == []
        assert NULL_TRACER.end(_NULL_SPAN) is None
        assert NULL_TRACER.clear() is None
