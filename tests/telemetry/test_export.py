"""Exporter tests: Chrome trace shape, validator, JSONL, Prometheus."""

import json

from repro.telemetry import (
    Tracer,
    get_metrics,
    metrics_snapshot,
    to_chrome_trace,
    trace_events_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _sample_tracer():
    clock = FakeClock()
    tr = Tracer(clock=clock)
    with tr.span("precond.setup", backend="binned"):
        clock.advance(0.010)
        with tr.span("precond.setup.extract"):
            clock.advance(0.002)
        tr.event("solver.iteration", i=1, resnorm=0.5)
        clock.advance(0.001)
    return tr


class TestChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(_sample_tracer())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(xs) == 2 and len(instants) == 1
        outer = next(e for e in xs if e["name"] == "precond.setup")
        inner = next(
            e for e in xs if e["name"] == "precond.setup.extract"
        )
        # microsecond conversion from the fake clock
        assert outer["ts"] == 0.0 and outer["dur"] == 13000.0
        assert inner["ts"] == 10000.0 and inner["dur"] == 2000.0
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["backend"] == "binned"
        assert instants[0]["s"] == "t"

    def test_open_spans_export_with_zero_duration(self):
        tr = Tracer(clock=FakeClock())
        tr.begin("left.open")
        doc = to_chrome_trace(tr)
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X" and ev["dur"] == 0.0
        assert validate_chrome_trace(doc) == []

    def test_sample_trace_validates_clean(self):
        assert validate_chrome_trace(to_chrome_trace(_sample_tracer())) == []

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "out.trace.json"
        doc = write_chrome_trace(_sample_tracer(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded == doc


def _linked_tracer():
    """Two detached request spans fanned into one launch span, the
    deliver span linking back - the serving topology in miniature."""
    clock = FakeClock()
    tr = Tracer(clock=clock)
    reqs = [tr.begin(f"req{i}", detached=True) for i in range(2)]
    launch = tr.begin("launch", detached=True)
    for r in reqs:
        launch.add_link(r)
    clock.advance(0.005)
    tr.end(launch)
    for r in reqs:
        deliver = tr.begin("deliver", parent=r, detached=True)
        deliver.add_link(launch)
        tr.end(deliver)
        tr.end(r)
    return tr, reqs, launch


class TestLinkFidelity:
    def test_links_survive_chrome_export_and_validation(self):
        tr, reqs, launch = _linked_tracer()
        doc = to_chrome_trace(tr)
        assert validate_chrome_trace(doc) == []
        by_name = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert by_name["launch"]["args"]["links"] == [
            r.span_id for r in reqs
        ]
        for e in doc["traceEvents"]:
            if e["name"] == "deliver":
                assert e["args"]["links"] == [launch.span_id]

    def test_dangling_link_flagged(self):
        doc = {
            "traceEvents": [
                {"name": "launch", "ph": "X", "ts": 0.0, "dur": 1.0,
                 "pid": 1, "tid": 0,
                 "args": {"span_id": 1, "links": [99]}},
            ]
        }
        assert any(
            "link" in p for p in validate_chrome_trace(doc)
        )

    def test_links_round_trip_through_jsonl(self):
        tr, reqs, launch = _linked_tracer()
        rows = [json.loads(ln) for ln in trace_events_to_jsonl(tr)]
        by_name = {}
        for r in rows:
            by_name.setdefault(r["name"], []).append(r)
        (launch_row,) = by_name["launch"]
        assert launch_row["links"] == [r.span_id for r in reqs]
        for row in by_name["deliver"]:
            assert row["links"] == [launch.span_id]
        for row in by_name["req0"] + by_name["req1"]:
            assert row["links"] == []


class TestValidator:
    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]

    def test_empty_trace_flagged(self):
        assert "trace is empty" in validate_chrome_trace(
            {"traceEvents": []}
        )

    def test_begin_end_phases_rejected(self):
        doc = {
            "traceEvents": [
                {"name": "b", "ph": "B", "ts": 0, "pid": 1, "tid": 0}
            ]
        }
        (problem,) = validate_chrome_trace(doc)
        assert "begin/end" in problem

    def test_monotonicity_violation(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 5.0, "dur": 1.0,
                 "pid": 1, "tid": 0},
                {"name": "b", "ph": "X", "ts": 1.0, "dur": 1.0,
                 "pid": 1, "tid": 0},
            ]
        }
        assert any(
            "monotonicity" in p for p in validate_chrome_trace(doc)
        )

    def test_unknown_parent(self):
        doc = {
            "traceEvents": [
                {"name": "child", "ph": "X", "ts": 0.0, "dur": 1.0,
                 "pid": 1, "tid": 0,
                 "args": {"span_id": 2, "parent_id": 99}},
            ]
        }
        assert any(
            "unknown parent" in p for p in validate_chrome_trace(doc)
        )

    def test_child_escaping_parent(self):
        doc = {
            "traceEvents": [
                {"name": "parent", "ph": "X", "ts": 0.0, "dur": 10.0,
                 "pid": 1, "tid": 0, "args": {"span_id": 1}},
                {"name": "child", "ph": "X", "ts": 5.0, "dur": 50.0,
                 "pid": 1, "tid": 0,
                 "args": {"span_id": 2, "parent_id": 1}},
            ]
        }
        assert any("escapes" in p for p in validate_chrome_trace(doc))


class TestJsonl:
    def test_lines_sorted_by_timestamp(self, tmp_path):
        tr = _sample_tracer()
        lines = trace_events_to_jsonl(tr)
        rows = [json.loads(ln) for ln in lines]
        assert [r["ts"] for r in rows] == sorted(r["ts"] for r in rows)
        types = {r["type"] for r in rows}
        assert types == {"span", "event"}
        path = tmp_path / "out.jsonl"
        assert write_jsonl(tr, str(path)) == len(lines)
        assert path.read_text().strip().count("\n") == len(lines) - 1


class TestMetricsExport:
    def test_snapshot_is_json_safe(self):
        get_metrics().counter("c").inc()
        json.dumps(metrics_snapshot())

    def test_write_prometheus(self, tmp_path):
        get_metrics().counter("repro_test_total").inc(2)
        path = tmp_path / "metrics.prom"
        text = write_prometheus(str(path))
        assert path.read_text() == text
        assert "repro_test_total 2" in text
