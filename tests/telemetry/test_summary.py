"""trace-summary roll-up tests against a hand-built fake-clock trace."""

from repro.telemetry import (
    Tracer,
    format_trace_summary,
    summarize_trace,
    to_chrome_trace,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _solve_like_trace():
    """setup 10 ms; solver 30 ms containing 2 x 5 ms applies."""
    clock = FakeClock()
    tr = Tracer(clock=clock)
    with tr.span("precond.setup"):
        clock.advance(0.010)
    with tr.span("solver.idrs"):
        for i in range(2):
            with tr.span("precond.apply"):
                clock.advance(0.005)
            tr.event("solver.iteration", i=i, resnorm=0.1)
            clock.advance(0.010)
    return to_chrome_trace(tr)


class TestSummarize:
    def test_fig9_split(self):
        s = summarize_trace(_solve_like_trace())
        split = s["split"]
        assert split["setup_us"] == 10000.0
        assert split["apply_us"] == 10000.0
        assert split["solver_us"] == 30000.0
        assert split["solver_excl_apply_us"] == 20000.0
        assert split["wall_us"] == 40000.0

    def test_roots_in_first_seen_order(self):
        s = summarize_trace(_solve_like_trace())
        assert s["roots"] == ["precond.setup", "solver.idrs"]

    def test_self_time_subtracts_children(self):
        s = summarize_trace(_solve_like_trace())
        idrs = s["by_name"]["solver.idrs"]
        assert idrs["total_us"] == 30000.0
        assert idrs["self_us"] == 20000.0  # minus the two applies

    def test_event_counts(self):
        s = summarize_trace(_solve_like_trace())
        assert s["events"] == {"solver.iteration": 2}

    def test_empty_document(self):
        s = summarize_trace({"traceEvents": []})
        assert s["split"]["wall_us"] == 0.0
        assert s["by_name"] == {} and s["roots"] == []


class TestFormat:
    def test_contains_decomposition_and_rollup(self):
        text = format_trace_summary(_solve_like_trace(), "x.json")
        assert "trace summary [x.json]" in text
        assert "Fig. 9" in text
        assert "preconditioner setup" in text
        assert "solver.idrs" in text
        assert "solver.iteration" in text
