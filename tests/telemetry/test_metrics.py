"""Metrics registry unit tests: instruments, snapshot, Prometheus."""

import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    get_metrics,
    set_metrics,
)


class TestCounter:
    def test_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "cache hits")
        c.inc()
        c.inc(2.0)
        c.inc(event="miss")
        assert c.value() == 3.0
        assert c.value(event="miss") == 1.0
        assert c.total() == 4.0

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1.0)


class TestGauge:
    def test_set_inc_value(self):
        g = MetricsRegistry().gauge("waste")
        g.set(0.25, backend="binned")
        g.inc(0.25, backend="binned")
        assert g.value(backend="binned") == 0.5
        assert g.value(backend="numpy") == 0.0


class TestHistogram:
    def test_bucket_boundaries_and_overflow(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()[""]
        # boundary values land in their bucket (le semantics)
        assert snap["buckets"] == {"0.1": 2, "1.0": 1, "+Inf": 1}
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.65)

    def test_labelled_series_are_independent(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))
        h.observe(0.5, stage="factor")
        h.observe(2.0, stage="solve")
        snap = h.snapshot()
        assert snap["stage=factor"]["buckets"]["1.0"] == 1
        assert snap["stage=solve"]["buckets"]["+Inf"] == 1

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_snapshot_shape_and_json_safety(self):
        reg = MetricsRegistry()
        reg.counter("c", "help c").inc(event="hit")
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert set(snap) == {"c", "g", "h"}
        assert snap["c"] == {
            "kind": "counter",
            "help": "help c",
            "values": {"event=hit": 1.0},
        }
        json.dumps(snap)  # fully serialisable

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {}

    def test_global_swap(self):
        original = get_metrics()
        fresh = set_metrics(None)
        try:
            assert fresh is get_metrics()
            assert fresh is not original
            assert set_metrics(original) is original
        finally:
            set_metrics(original)


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_cache_events_total", "Cache events").inc(
            3, event="hit"
        )
        reg.gauge("repro_padding_waste_ratio").set(0.25, backend="binned")
        h = reg.histogram("repro_stage_seconds", buckets=(0.1, 1.0))
        h.observe(0.05, stage="factor")
        h.observe(0.5, stage="factor")
        text = reg.prometheus_text()
        assert "# HELP repro_cache_events_total Cache events" in text
        assert "# TYPE repro_cache_events_total counter" in text
        assert 'repro_cache_events_total{event="hit"} 3' in text
        assert (
            'repro_padding_waste_ratio{backend="binned"} 0.25' in text
        )
        # cumulative buckets: le="1" includes the le="0.1" count
        # (integral bounds render without the trailing .0)
        assert (
            'repro_stage_seconds_bucket{stage="factor",le="0.1"} 1'
            in text
        )
        assert (
            'repro_stage_seconds_bucket{stage="factor",le="1"} 2'
            in text
        )
        assert (
            'repro_stage_seconds_bucket{stage="factor",le="+Inf"} 2'
            in text
        )
        assert 'repro_stage_seconds_count{stage="factor"} 2' in text
        assert text.endswith("\n")

    def test_empty_registry_exposes_empty(self):
        assert MetricsRegistry().prometheus_text() == ""

    def test_hostile_label_values_are_escaped(self):
        """Backslashes, quotes and newlines in label values used to be
        emitted raw, producing an unparseable (or worse, silently
        misparsed) exposition document."""
        reg = MetricsRegistry()
        hostile = 'bin[tile=4"\n]'
        reg.counter("repro_bin_events_total", "Bin events").inc(
            1, bin=hostile, path="C:\\tmp"
        )
        text = reg.prometheus_text()
        # escaped per the text-format spec: \ -> \\, " -> \", LF -> \n
        assert (
            'repro_bin_events_total{bin="bin[tile=4\\"\\n]",'
            'path="C:\\\\tmp"} 1' in text
        )
        # the raw newline must not survive anywhere
        for line in text.splitlines():
            assert "\n" not in line

    def test_hostile_help_text_is_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g", "line one\nline two \\ backslash").set(1.0)
        text = reg.prometheus_text()
        assert (
            "# HELP repro_g line one\\nline two \\\\ backslash" in text
        )

    def test_exposition_round_trips_line_format(self):
        """Every non-comment line must match the exposition grammar:
        ``name{label="value",...} number`` with no unescaped quotes or
        newlines inside label values."""
        import re

        reg = MetricsRegistry()
        reg.counter("repro_c", 'help with "quotes"').inc(
            2, k='v"\n\\', other="plain"
        )
        reg.histogram("repro_h", buckets=(1.0,)).observe(0.5, b='x"y')
        line_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\\n])*",?)*\})?'
            r' [0-9eE.+-]+(\.[0-9]+)?$|^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{.*\})? \+Inf$'
        )
        for line in reg.prometheus_text().splitlines():
            if line.startswith("#") or not line:
                continue
            assert line_re.match(line), f"malformed exposition line: {line!r}"
