"""End-to-end telemetry: traced solves, metric consistency, overhead.

The acceptance criteria of the telemetry subsystem: one traced solve
yields a loadable, valid Chrome trace covering preconditioner setup
through solver iterations and watchdog audits; the metrics snapshot
agrees with the solver/runtime reports; and the disabled path leaves
``stage_seconds`` structurally identical to the untraced run.
"""

import numpy as np
import pytest

from repro.core import random_batch, random_rhs
from repro.precond import BlockJacobiPreconditioner
from repro.runtime import BatchRuntime
from repro.solvers import Watchdog, bicgstab, idrs
from repro.sparse import fem_block_2d
from repro.telemetry import (
    get_metrics,
    summarize_trace,
    to_chrome_trace,
    tracing,
    validate_chrome_trace,
)


def _problem(n=8, dofs=2, seed=0):
    A = fem_block_2d(n, n, dofs, seed=seed)
    b = np.random.default_rng(seed + 1).standard_normal(A.n_rows)
    return A, b


class TestTracedSolve:
    def test_trace_covers_setup_through_audits(self):
        A, b = _problem()
        with tracing() as tr:
            M = BlockJacobiPreconditioner(
                max_block_size=16, backend="binned"
            ).setup(A)
            result = idrs(
                A, b, M=M, watchdog=Watchdog(audit_every=10)
            )
        assert result.converged
        doc = to_chrome_trace(tr)
        assert validate_chrome_trace(doc) == []
        s = summarize_trace(doc)
        assert s["roots"] == ["precond.setup", "solver.idrs"]
        names = set(s["by_name"])
        assert {
            "precond.setup.blocking",
            "precond.setup.extract",
            "precond.setup.factorize",
            "precond.apply",
            "runtime.factorize",
            "watchdog.audit",
        } <= names
        assert any(n.startswith("factorize.bin[tile=") for n in names)
        assert s["events"]["solver.iteration"] >= result.iterations - 1
        # Fig. 9 split is populated and internally consistent
        split = s["split"]
        assert split["setup_us"] > 0 and split["apply_us"] > 0
        assert split["solver_us"] >= split["solver_excl_apply_us"]

    def test_solver_metrics_match_result(self):
        A, b = _problem()
        M = BlockJacobiPreconditioner(max_block_size=16).setup(A)
        result = bicgstab(A, b, M=M)
        assert result.converged
        reg = get_metrics()
        solves = reg.counter("repro_solves_total")
        iters = reg.counter("repro_solver_iterations_total")
        assert solves.value(solver="bicgstab", converged="true") == 1.0
        assert iters.value(solver="bicgstab") == float(result.iterations)

    def test_runtime_metrics_match_report(self):
        batch = random_batch(
            64, size_range=(1, 16), kind="diag_dominant", seed=3
        )
        rhs = random_rhs(batch, seed=4)
        rt = BatchRuntime(backend="binned")
        fac = rt.factorize(batch)
        fac.solve(rhs)
        rt.factorize(batch)  # cache hit (recorded on last_report)
        assert rt.last_report.cache_hit
        cache = get_metrics().counter("repro_cache_events_total")
        assert cache.value(event="miss") == 1.0
        assert cache.value(event="hit") == 1.0
        waste = get_metrics().gauge("repro_padding_waste_ratio")
        rep = fac.report
        assert waste.value(backend=rep.backend) == pytest.approx(
            rep.padding_waste / rep.padded_flops
        )
        stage = get_metrics().histogram("repro_stage_seconds")
        snap = stage.snapshot()
        assert "stage=factor" in snap and "stage=solve" in snap


class TestDisabledPath:
    def test_stage_seconds_structure_identical(self):
        batch = random_batch(
            32, size_range=(1, 8), kind="diag_dominant", seed=5
        )
        rt = BatchRuntime(backend="binned", cache=False)
        fac_plain = rt.factorize(batch, use_cache=False)
        with tracing():
            fac_traced = rt.factorize(batch, use_cache=False)
        assert set(fac_plain.report.stage_seconds) == set(
            fac_traced.report.stage_seconds
        )

    def test_disabled_run_collects_no_spans(self):
        A, b = _problem(n=4, dofs=1)
        M = BlockJacobiPreconditioner(max_block_size=8).setup(A)
        r = bicgstab(A, b, M=M)
        assert r.converged
        from repro.telemetry import NULL_TRACER, get_tracer

        assert get_tracer() is NULL_TRACER


class TestOverheadHarness:
    def test_measure_smoke(self):
        from repro.telemetry import measure_disabled_overhead

        result = measure_disabled_overhead(
            repeats=1, nb=16, solves=1, backend="binned"
        )
        assert set(result) >= {
            "instrumented_seconds",
            "bare_seconds",
            "overhead",
            "overhead_clamped",
        }
        assert result["bare_seconds"] > 0
        assert result["overhead_clamped"] >= 0.0
