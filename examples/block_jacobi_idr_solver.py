#!/usr/bin/env python3
"""End-to-end block-Jacobi preconditioned IDR(4) solve (Section IV-D).

Reproduces the paper's solver pipeline on one FEM-like problem:

* supervariable blocking discovers the natural 4x4 node blocks and
  agglomerates them under a user-chosen bound;
* the diagonal blocks are extracted and factorized by the batched LU;
* IDR(4) runs with the preconditioner applied via batched triangular
  solves - and we compare against scalar Jacobi, no preconditioning,
  and the Gauss-Huard backend.

Run:  python examples/block_jacobi_idr_solver.py
"""

import numpy as np

from repro.blocking import find_supervariables, supervariable_blocking
from repro.precond import (
    BlockJacobiPreconditioner,
    ScalarJacobiPreconditioner,
)
from repro.solvers import idrs
from repro.sparse import fem_block_2d


def main() -> None:
    # a 2-D mesh with 4 unknowns per node -> natural 4x4 blocks
    A = fem_block_2d(30, 30, 4, seed=7, dominance=0.4)
    b = np.ones(A.n_rows)  # the paper's right-hand side convention
    print(f"matrix: n={A.n_rows}, nnz={A.nnz}")

    sv = find_supervariables(A)
    print(f"supervariables found: {sv.size} (sizes {np.unique(sv)})")
    for bound in (8, 16, 32):
        sizes = supervariable_blocking(A, bound)
        print(f"  bound {bound:2d}: {sizes.size} diagonal blocks, "
              f"largest {sizes.max()}")

    print("\nIDR(4), relative residual reduction 1e-6, max 10000 its:")
    runs = {
        "unpreconditioned": None,
        "scalar Jacobi": ScalarJacobiPreconditioner().setup(A),
        "block-Jacobi LU (32)": BlockJacobiPreconditioner(
            method="lu", max_block_size=32
        ).setup(A),
        "block-Jacobi GH (32)": BlockJacobiPreconditioner(
            method="gh", max_block_size=32
        ).setup(A),
        "block-Jacobi LU (8)": BlockJacobiPreconditioner(
            method="lu", max_block_size=8
        ).setup(A),
    }
    for label, M in runs.items():
        r = idrs(A, b, s=4, M=M)
        status = "ok " if r.converged else "FAIL"
        print(f"  {label:22s} [{status}] iterations={r.iterations:5d}  "
              f"setup={r.setup_seconds * 1e3:6.1f}ms  "
              f"solve={r.solve_seconds * 1e3:7.1f}ms")

    # verify the winner's solution against the true residual
    M = runs["block-Jacobi LU (32)"]
    r = idrs(A, b, s=4, M=M)
    true_res = np.linalg.norm(A.matvec(r.x) - b) / np.linalg.norm(b)
    print(f"\ntrue relative residual of the LU(32) solve: {true_res:.2e}")
    assert true_res < 1e-5
    print("block_jacobi_idr_solver OK")


if __name__ == "__main__":
    main()
