#!/usr/bin/env python3
"""Quickstart: factorize a variable-size batch and solve with it.

Walks the paper's core loop in five steps:

1. build a batch of small matrices of *different* sizes (4..32);
2. factorize them all with one batched LU call (implicit pivoting);
3. solve one right-hand side per block with the batched GETRS;
4. verify the residuals;
5. peek at the implicit-pivoting bookkeeping of one block.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    BatchedMatrices,
    BatchedVectors,
    lu_factor,
    lu_solve,
    solve_residuals,
)


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. a variable-size batch: 1000 blocks, sizes drawn from 4..32
    sizes = rng.integers(4, 33, size=1000)
    blocks = [
        rng.uniform(-1, 1, (m, m)) + np.diag(np.full(m, float(m)))
        for m in sizes
    ]
    batch = BatchedMatrices.identity_padded(blocks)
    print(f"batch: {batch}")

    # 2. one call factorizes everything (P A_i = L_i U_i per block)
    fac = lu_factor(batch)
    print(f"factorized {fac.nb} blocks, all regular: {fac.ok}")

    # 3. one call solves a right-hand side per block
    rhs = BatchedVectors.from_vectors(
        [rng.uniform(-1, 1, m) for m in sizes], tile=batch.tile
    )
    x = lu_solve(fac, rhs)

    # 4. residual check
    res = solve_residuals(batch, x, rhs)
    print(f"max relative residual over the batch: {res.max():.2e}")
    assert res.max() < 1e-10

    # 5. the implicit-pivoting record of block 0: a permutation that was
    # applied once, fused with the factor off-load - no row was ever
    # swapped during the elimination itself (Section III-A)
    print(f"block 0 (size {sizes[0]}) pivot permutation: "
          f"{fac.perm[0][: sizes[0]]}")
    print("quickstart OK")


if __name__ == "__main__":
    main()
