#!/usr/bin/env python3
"""Tour of supervariable blocking and diagonal-block extraction.

Shows how the block-Jacobi setup discovers block structure (Section
II-A) and why the shared-memory extraction matters on unbalanced
matrices (Section III-C / Figure 3):

* on an FEM matrix, blocking recovers the mesh's dofs-per-node blocks;
* on a circuit-like matrix there is no pattern to find, agglomeration
  still builds usable blocks, and the extraction strategy comparison
  shows the naive scheme's load imbalance.

Run:  python examples/supervariable_blocking_tour.py
"""

import numpy as np

from repro.blocking import (
    extract_blocks,
    extraction_stats,
    find_supervariables,
    supervariable_blocking,
)
from repro.sparse import circuit_like, fem_block_2d


def main() -> None:
    # --- FEM: the mesh's 5-dof nodes are found exactly ----------------
    A = fem_block_2d(20, 20, 5, seed=1)
    sv = find_supervariables(A)
    print(f"FEM matrix n={A.n_rows}: {sv.size} supervariables, "
          f"sizes {dict(zip(*map(list, np.unique(sv, return_counts=True))))}")
    for bound in (8, 16, 32):
        sizes = supervariable_blocking(A, bound)
        print(f"  bound {bound:2d}: {sizes.size:4d} blocks "
              f"(mean size {sizes.mean():.1f})")

    # extraction correctness: compare one block against a dense slice
    sizes = supervariable_blocking(A, 16)
    batch = extract_blocks(A, sizes)
    starts = np.concatenate([[0], np.cumsum(sizes)])
    ref = A.extract_block(int(starts[3]), int(sizes[3]))
    assert np.array_equal(batch.block(3), ref)
    print(f"  extracted {batch.nb} blocks into a tile-{batch.tile} batch; "
          "block 3 verified against the dense reference")

    # --- circuit: unbalanced rows punish the naive extraction ----------
    C = circuit_like(3000, seed=2, hub_degree=300)
    nnz = C.row_nnz()
    print(f"\ncircuit matrix n={C.n_rows}: row nnz median "
          f"{int(np.median(nnz))}, max {nnz.max()} (hub rows)")
    csizes = supervariable_blocking(C, 32)
    for strategy in ("shared-memory", "row-per-thread"):
        st = extraction_stats(C, csizes, strategy=strategy)
        print(f"  {strategy:15s}: {st.index_transactions:7d} index tx, "
              f"warp-load imbalance {st.imbalance:5.2f}x")
    shared = extraction_stats(C, csizes, "shared-memory")
    naive = extraction_stats(C, csizes, "row-per-thread")
    assert shared.imbalance < naive.imbalance
    print("supervariable_blocking_tour OK")


if __name__ == "__main__":
    main()
