#!/usr/bin/env python3
"""Serving loop: repeated block-Jacobi setup with a factorization cache.

The serving scenario: the same system matrix is solved against a stream
of right-hand sides (time steps, requests), and a naive loop pays the
full preconditioner setup - extraction + batched factorization - every
time.  A shared :class:`repro.runtime.BatchRuntime` fingerprints the
extracted diagonal blocks and serves repeated setups from its cache.

The script runs the same loop twice - once with a cold cache per
iteration, once with one shared runtime - and prints what the
``RuntimeReport`` and the cache counters say about each.

Run:  python examples/runtime_serving_loop.py
"""

import time

import numpy as np

from repro.precond import BlockJacobiPreconditioner
from repro.runtime import BatchRuntime
from repro.solvers import idrs
from repro.sparse import fem_block_2d

REQUESTS = 8
BOUND = 16


def serve(A, rhs_stream, runtime):
    """One serving loop: setup + solve per request, timed."""
    setup_s, solve_s, iters = 0.0, 0.0, 0
    for b in rhs_stream:
        t0 = time.perf_counter()
        M = BlockJacobiPreconditioner(
            "lu", BOUND, runtime=runtime
        ).setup(A)
        setup_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        r = idrs(A, b, s=4, M=M, tol=1e-6, maxiter=2000)
        solve_s += time.perf_counter() - t0
        assert r.converged
        iters += r.iterations
    return setup_s, solve_s, iters, M


def main() -> None:
    A = fem_block_2d(24, 24, 4, seed=3)
    rng = np.random.default_rng(7)
    rhs_stream = [rng.uniform(-1, 1, A.n_rows) for _ in range(REQUESTS)]
    print(f"system: n={A.n_rows}, nnz={A.nnz}, {REQUESTS} requests\n")

    # naive: a fresh runtime (empty cache) per request
    cold_setup, cold_solve, iters, _ = serve(
        A, rhs_stream, BatchRuntime(cache=False)
    )
    print("cold setup every request:")
    print(f"  setup {cold_setup * 1e3:7.1f} ms   "
          f"solve {cold_solve * 1e3:7.1f} ms   ({iters} iterations)\n")

    # cached: one shared runtime across the loop
    rt = BatchRuntime()
    warm_setup, warm_solve, iters, M = serve(A, rhs_stream, rt)
    print("shared runtime (factorization cache):")
    print(f"  setup {warm_setup * 1e3:7.1f} ms   "
          f"solve {warm_solve * 1e3:7.1f} ms   ({iters} iterations)")

    stats = rt.cache_stats
    print(f"  cache: {stats.hits} hits / {stats.lookups} lookups "
          f"(hit rate {stats.hit_rate:.0%}, {stats.entries} entries)")
    print("  last setup's runtime report:")
    for line in M.report.runtime.summary().splitlines():
        print(f"    {line}")

    speedup = cold_setup / warm_setup if warm_setup else float("inf")
    print(f"\nsetup speedup from caching: {speedup:.1f}x "
          f"over {REQUESTS} requests")
    assert stats.hits == REQUESTS - 1
    assert speedup > 1.0
    print("serving loop OK")


if __name__ == "__main__":
    main()
