#!/usr/bin/env python3
"""Serving loop: concurrent tenants through the coalescing service.

The serving scenario, one level up from a single cached runtime: many
independent clients (tenants), each with its own small batch of
diagonal blocks, submit setup/solve jobs concurrently.  The
``repro.serving`` stack admits them, merges compatible jobs into one
shared batched factorization per flush (cross-request coalescing - the
paper's launch amortization applied across requests), scatters results
back to each tenant, and caches per-tenant handles in sharded,
TTL/byte-bounded caches.

The script serves identical traffic twice - naively (one factorization
per request) and coalesced through the asyncio service - prints what
the engine stats say about each, and cross-checks a few coalesced
answers bit-for-bit against solo runs.

Run:  python examples/runtime_serving_loop.py
"""

import asyncio
import time

import numpy as np

from repro.core import random_batch, random_rhs
from repro.runtime import BatchRuntime
from repro.serving import (
    CoalescingEngine,
    PreconditionerService,
    Request,
    TenantCacheShards,
)

TENANTS = 24
ROUNDS = 3


def make_traffic():
    """Deterministic per-tenant solve jobs, repeated across rounds
    (the repetition is what the tenant caches are for)."""
    rounds = []
    for r in range(ROUNDS):
        jobs = []
        for i in range(TENANTS):
            batch = random_batch(
                3, size_range=(2, 24), kind="diag_dominant", seed=i
            )
            jobs.append(
                Request(
                    tenant=f"tenant-{i:02d}",
                    batch=batch,
                    kind="solve",
                    rhs=random_rhs(batch, seed=100 * r + i),
                )
            )
        rounds.append(jobs)
    return rounds


def serve_naive(rounds):
    """One factorization per request: the un-amortized baseline."""
    engine = CoalescingEngine()
    responses = []
    t0 = time.perf_counter()
    for jobs in rounds:
        for req in jobs:
            ticket = engine.submit(req)
            if not ticket.done:
                engine.flush()
            responses.append(ticket.response)
    return engine, responses, time.perf_counter() - t0


async def serve_coalesced(rounds):
    """Concurrent submissions through the asyncio service: jobs
    arriving within the linger window share one factorization, and
    repeated rounds hit the per-tenant caches."""
    engine = CoalescingEngine(
        shards=TenantCacheShards(
            per_tenant_entries=4, ttl_seconds=60.0, per_tenant_bytes=1 << 20
        )
    )
    responses = []
    t0 = time.perf_counter()
    async with PreconditionerService(engine, max_delay=0.002) as svc:
        for jobs in rounds:
            out = await asyncio.gather(*(svc.submit(r) for r in jobs))
            responses.extend(out)
    return engine, responses, time.perf_counter() - t0


def main() -> None:
    rounds = make_traffic()
    total = sum(len(jobs) for jobs in rounds)
    print(
        f"traffic: {TENANTS} tenants x {ROUNDS} rounds = {total} "
        "solve jobs\n"
    )

    naive_eng, naive_resp, naive_s = serve_naive(rounds)
    print("naive (one factorization per request):")
    print(f"  {naive_s * 1e3:7.1f} ms,"
          f" {naive_eng.stats['executions']} factorizations,"
          f" coalescing ratio {naive_eng.coalescing_ratio:.2f}\n")

    co_eng, co_resp, co_s = asyncio.run(serve_coalesced(rounds))
    stats = co_eng.stats
    shards = co_eng.shards.stats()
    print("coalescing service (shared bins + tenant caches):")
    print(f"  {co_s * 1e3:7.1f} ms,"
          f" {stats['executions']} factorizations,"
          f" coalescing ratio {co_eng.coalescing_ratio:.2f}")
    print(f"  tenant caches: {stats['cache_hits']} hits across "
          f"{shards['tenants']} shards "
          f"({shards['bytes'] / 1024:.0f} KiB resident)\n")

    # isolation spot check: coalesced answers are bit-identical to
    # solo runs of the same tenant batch
    solo = BatchRuntime(cache=False)
    for req, resp in zip(rounds[0][:4], co_resp[:4]):
        handle = solo.factorize(req.batch, use_cache=False)
        assert np.array_equal(handle.info, resp.info)
        assert np.array_equal(
            handle.solve(req.rhs).data, resp.solution.data
        )
    print("spot check: 4 coalesced answers bit-identical to solo runs")

    assert all(r.status == "ok" for r in naive_resp)
    assert all(r.status == "ok" for r in co_resp)
    assert naive_eng.coalescing_ratio == 1.0
    assert co_eng.coalescing_ratio > 1.0
    assert stats["cache_hits"] > 0
    assert stats["executions"] < naive_eng.stats["executions"]
    print(
        f"\n{naive_eng.stats['executions']} naive factorizations -> "
        f"{stats['executions']} coalesced "
        f"({co_eng.coalescing_ratio:.1f} requests per launch)"
    )
    print("serving loop OK")


if __name__ == "__main__":
    main()
