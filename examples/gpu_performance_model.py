#!/usr/bin/env python3
"""Explore the GPU performance model behind Figures 4-7.

Shows the three layers of the hardware substitution:

1. run one register-resident kernel on the SIMT warp simulator and
   inspect its instruction/transaction counters;
2. project the batched launch onto a Tesla P100 (the paper's device)
   and onto a V100, and see which bound (compute, memory, latency)
   dominates where;
3. sweep the block size to locate the LU/Gauss-Huard crossover the
   paper reports at ~16 (single) / ~23 (double precision).

Run:  python examples/gpu_performance_model.py
"""

import numpy as np

from repro.gpu import (
    DeviceSpec,
    kernel_profile,
    project_kernel,
)
from repro.gpu.kernels.lu import warp_lu_factor


def main() -> None:
    # 1. one warp, one 16x16 problem: what does the kernel actually do?
    rng = np.random.default_rng(0)
    M = rng.uniform(-1, 1, (16, 16)) + 16 * np.eye(16)
    _, _, _, stats = warp_lu_factor(M)
    print("SIMT counters of one 16x16 LU (tile 32):")
    print(f"  arithmetic instructions : {stats.arith_instructions}")
    print(f"  warp shuffles           : {stats.shuffles}")
    print(f"  executed flops          : {stats.flops} "
          f"(useful: {int(2 * 16**3 / 3)} - the gap is padding waste)")
    print(f"  load/store transactions : {stats.global_load_transactions}"
          f"/{stats.global_store_transactions}")

    # 2. project a 40k-problem batch on two devices
    print("\nbatched GETRF at m=32, nb=40000 (double precision):")
    for dev in (DeviceSpec.p100(), DeviceSpec.v100()):
        for kind in ("lu_factor", "gh_factor", "cublas_factor"):
            t = project_kernel(kind, 32, 40000, device=dev)
            print(f"  {dev.name:10s} {kind:14s} {t.gflops:7.1f} GFLOPS "
                  f"({t.bound}-bound, {t.seconds * 1e3:.2f} ms)")

    # 3. the LU/GH crossover (Figure 5)
    print("\nLU vs Gauss-Huard crossover:")
    for dtype, label in ((np.float32, "single"), (np.float64, "double")):
        last = None
        for m in range(4, 33):
            lu = project_kernel("lu_factor", m, 40000, dtype=dtype).gflops
            gh = project_kernel("gh_factor", m, 40000, dtype=dtype).gflops
            if lu > gh:
                last = m
                break
        print(f"  {label} precision: small-size LU overtakes GH at m={last} "
              f"(paper: ~16 SP / ~23 DP)")

    # register pressure drives occupancy: show the profile's estimate
    prof = kernel_profile("lu_factor", 32, 8)
    conc = DeviceSpec.p100().concurrent_warps(prof.regs_per_thread)
    print(f"\nLU kernel register footprint: {prof.regs_per_thread} regs/thread"
          f" -> {conc} concurrent warps on a P100")
    print("gpu_performance_model OK")


if __name__ == "__main__":
    main()
