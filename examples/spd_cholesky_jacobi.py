#!/usr/bin/env python3
"""Extension example: Cholesky block-Jacobi + CG on SPD problems.

The paper's conclusion names a Cholesky-based variant for symmetric
positive definite problems as future work; this library implements it.
On SPD systems the LLT factorization halves the setup flops and the
preconditioned operator is identical, so CG follows the exact same
iteration path as with LU-factorized blocks.

Run:  python examples/spd_cholesky_jacobi.py
"""

import numpy as np

from repro.precond import BlockJacobiPreconditioner
from repro.solvers import cg
from repro.sparse import laplacian_3d


def main() -> None:
    A = laplacian_3d(14, 14, 14)
    b = np.ones(A.n_rows)
    print(f"3-D Laplacian: n={A.n_rows}, nnz={A.nnz}")

    results = {}
    for method in ("lu", "cholesky", "gje"):
        M = BlockJacobiPreconditioner(method=method, max_block_size=16)
        M.setup(A)
        r = cg(A, b, M=M)
        results[method] = r
        print(f"  CG + block-Jacobi[{method:8s}]: "
              f"{'ok ' if r.converged else 'FAIL'} "
              f"iterations={r.iterations:4d} "
              f"setup={M.setup_seconds * 1e3:6.1f}ms "
              f"solve={r.solve_seconds * 1e3:7.1f}ms")

    # identical operators -> identical CG trajectories (up to rounding)
    assert results["lu"].iterations == results["cholesky"].iterations
    x_err = np.linalg.norm(results["lu"].x - results["cholesky"].x)
    print(f"  |x_lu - x_chol| = {x_err:.2e}")

    # mixed-precision twist: fp32 blocks still precondition fp64 CG
    M32 = BlockJacobiPreconditioner(
        method="cholesky", max_block_size=16, dtype=np.float32
    ).setup(A)
    r32 = cg(A, b, M=M32)
    print(f"  fp32-block preconditioner: converged={r32.converged} "
          f"iterations={r32.iterations} "
          f"(fp64 baseline: {results['cholesky'].iterations})")
    assert r32.converged
    print("spd_cholesky_jacobi OK")


if __name__ == "__main__":
    main()
